package lorel

import (
	"strings"
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// paperEngine returns an engine with the paper's DOEM database (Figure 4)
// registered as "guide", plus the ids.
func paperEngine(t testing.TB) (*Engine, *guidegen.PaperIDs, *doem.Database) {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(db, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatalf("building paper DOEM: %v", err)
	}
	e := NewEngine()
	e.Register("guide", d)
	return e, ids, d
}

// oemEngine returns an engine over the plain Figure 3 OEM database (the
// paper history applied without DOEM).
func oemEngine(t testing.TB) (*Engine, *guidegen.PaperIDs) {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	if err := guidegen.PaperHistory(ids).Apply(db); err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.Register("guide", NewOEMGraph(db))
	return e, ids
}

func ids(res *Result) []oem.NodeID { return res.FirstColumnNodes() }

func containsID(list []oem.NodeID, id oem.NodeID) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// TestPaperExample41 reproduces Example 4.1: price < 20.5 over the Figure 3
// database returns exactly the Bangkok Cuisine object, despite the string
// price and the missing price.
func TestPaperExample41(t *testing.T) {
	e, pids := oemEngine(t)
	res, err := e.Query(`select guide.restaurant where guide.restaurant.price < 20.5`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 1 || got[0] != pids.Bangkok {
		t.Errorf("result = %v, want [%s] (Bangkok Cuisine)", got, pids.Bangkok)
	}
}

// TestPaperExample41OnDOEM: the same plain Lorel query over the DOEM
// database must behave identically (queries without annotations see the
// current snapshot).
func TestPaperExample41OnDOEM(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant where guide.restaurant.price < 20.5`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 1 || got[0] != pids.Bangkok {
		t.Errorf("result = %v, want [%s]", got, pids.Bangkok)
	}
}

// TestPaperExample42 reproduces "select guide.<add>restaurant": only the
// newly added Hakata entry.
func TestPaperExample42(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.<add>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 1 || got[0] != pids.Hakata {
		t.Errorf("result = %v, want [%s] (Hakata)", got, pids.Hakata)
	}
}

// TestPaperExample43 reproduces the add-before-4Jan97 query; Hakata was
// added on 1Jan97 so it qualifies.
func TestPaperExample43(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.<add at T>restaurant where T < 4Jan97`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 1 || got[0] != pids.Hakata {
		t.Errorf("result = %v, want [%s]", got, pids.Hakata)
	}
	// With a cutoff before the addition, the result is empty.
	res, err = e.Query(`select guide.<add at T>restaurant where T < 31Dec96`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("pre-history cutoff returned %d rows", res.Len())
	}
}

// TestPaperExample44 reproduces the price-update query with time and data
// variables in the select clause: one row {name: "Bangkok Cuisine",
// update-time: 1Jan97, new-value: 20}.
func TestPaperExample44(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N, T, NV
		from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N
		where T >= 1Jan97 and NV > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", res.Len(), res)
	}
	row := res.Rows[0]
	nameCell, _ := row.Cell("name")
	if v, _ := nameCell.Value(); !v.Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("name = %s", v)
	}
	tCell, _ := row.Cell("update-time")
	if v, _ := tCell.Value(); !v.Equal(value.Time(guidegen.T1)) {
		t.Errorf("update-time = %s, want 1Jan97", v)
	}
	nvCell, _ := row.Cell("new-value")
	if v, _ := nvCell.Value(); !v.Equal(value.Int(20)) {
		t.Errorf("new-value = %s, want 20", v)
	}
}

// TestPaperExample44Filtered: raising the NV threshold filters the row out.
func TestPaperExample44Filtered(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N, T, NV
		from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N
		where T >= 1Jan97 and NV > 25`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
}

// TestPaperExample45 reproduces the where-clause annotation query. In the
// paper's database no "moderate" price was *added* (Janta's was original),
// so the result is empty; after adding one, the query returns that
// restaurant's name.
func TestPaperExample45(t *testing.T) {
	e, _, d := paperEngine(t)
	const q = `select N from guide.restaurant R, R.name N
		where R.<add at T>price = "moderate" and T >= 1Jan97`
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %d, want 0 (no price additions in paper history)\n%s", res.Len(), res)
	}
	// Extend the history: add a moderate price to Hakata on 10Jan97.
	_, pids, _ := func() (*Engine, *guidegen.PaperIDs, *doem.Database) { return paperEngine(t) }()
	_ = pids
	newPrice := oem.NodeID(500)
	err = d.Apply(timestamp.MustParse("10Jan97"), change.Set{
		change.CreNode{Node: newPrice, Value: value.Str("moderate")},
		change.AddArc{Parent: 100, Label: "price", Child: newPrice}, // 100 = Hakata
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("name")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Hakata")) {
		t.Errorf("names = %v, want [Hakata]", vals)
	}
}

// TestWhereAnnotationVarShared checks that a time variable bound in a
// where-clause path is shared across conjuncts (the hoisted existential
// semantics of Section 4.2.1): the time filter must apply to the *same*
// addition event that produced the value binding.
func TestWhereAnnotationVarShared(t *testing.T) {
	e, _, d := paperEngine(t)
	newPrice := oem.NodeID(500)
	if err := d.Apply(timestamp.MustParse("10Jan97"), change.Set{
		change.CreNode{Node: newPrice, Value: value.Str("moderate")},
		change.AddArc{Parent: 100, Label: "price", Child: newPrice},
	}); err != nil {
		t.Fatal(err)
	}
	// The addition was at 10Jan97; requiring T < 5Jan97 must fail even
	// though other arcs were added before 5Jan97.
	res, err := e.Query(`select N from guide.restaurant R, R.name N
		where R.<add at T>price = "moderate" and T < 5Jan97`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0 (time filter must bind to the same event)", res.Len())
	}
}

// TestRemAnnotation finds removed arcs: the Janta parking removal.
func TestRemAnnotation(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select R, T from guide.restaurant R, R.<rem at T>parking P`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	got := res.Nodes("restaurant")
	if len(got) != 1 || got[0] != pids.Janta {
		t.Errorf("restaurant = %v, want Janta (%s)", got, pids.Janta)
	}
	ts := res.Values("remove-time")
	if len(ts) != 1 || !ts[0].Equal(value.Time(guidegen.T3)) {
		t.Errorf("remove-time = %v, want 8Jan97", ts)
	}
}

// TestCreAnnotationSelect mirrors the QSS filter query shape.
func TestCreAnnotationSelect(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant<cre at T> where T > 31Dec96`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 1 || got[0] != pids.Hakata {
		t.Errorf("created restaurants = %v, want [Hakata]", got)
	}
}

// TestUpdFromVar: selecting the old value.
func TestUpdFromVar(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select OV, NV from guide.restaurant.price<upd from OV to NV>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	ovs := res.Values("old-value")
	nvs := res.Values("new-value")
	if !ovs[0].Equal(value.Int(10)) || !nvs[0].Equal(value.Int(20)) {
		t.Errorf("old=%v new=%v, want 10/20", ovs, nvs)
	}
}

// TestHashWildcard reproduces the Section 6 polling query: '#' must match
// both the direct string address and the nested street object.
func TestHashWildcard(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant where guide.restaurant.address.# like "%Lytton%"`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	// Janta's address is the string "120 Lytton" (the address node itself,
	// matched by the 0-length path); Bangkok's address has street "Lytton".
	if len(got) != 2 || !containsID(got, pids.Janta) || !containsID(got, pids.Bangkok) {
		t.Errorf("restaurants with Lytton addresses = %v, want Janta and Bangkok", got)
	}
}

// TestHashCycleSafe: '#' from the root terminates despite the
// parking/nearby-eats cycle.
func TestHashCycleSafe(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.# where guide.# = "Lytton lot 2"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("lot address not found through wildcard")
	}
}

func TestLabelGlob(t *testing.T) {
	e, _, _ := paperEngine(t)
	// %arking% matches "parking".
	res, err := e.Query(`select guide.restaurant.%arking%.comment`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("comment")
	if len(vals) != 1 || !vals[0].Equal(value.Str("usually full")) {
		t.Errorf("glob results = %v", vals)
	}
}

func TestExistsExpression(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N
		where exists P in R.price : P = 20`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("name")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("names = %v", vals)
	}
}

func TestOrWithMissingPath(t *testing.T) {
	// Hakata has no price; the disjunction must still match it by name.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N
		where R.price = 20 or N = "Hakata"`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("name")
	if len(vals) != 2 {
		t.Errorf("names = %v, want Bangkok Cuisine and Hakata", vals)
	}
}

func TestNotExpression(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N where not N = "Janta"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values("name") {
		if v.Equal(value.Str("Janta")) {
			t.Error("negation failed to exclude Janta")
		}
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestArithmetic(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N where R.price * 2 = 40`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("name")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("names = %v", vals)
	}
	res, err = e.Query(`select R.price + 5 as bumped from guide.restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	vals = res.Values("bumped")
	if len(vals) != 1 || !vals[0].Equal(value.Int(25)) {
		t.Errorf("bumped = %v, want [25]", vals)
	}
}

func TestDeduplication(t *testing.T) {
	// Both restaurants share the parking node; selecting it must yield one row.
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant.parking`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	// After the history, only Bangkok still points at the parking node.
	if len(got) != 1 || got[0] != pids.Parking {
		t.Errorf("parking nodes = %v", got)
	}
}

func TestUnknownNameError(t *testing.T) {
	e, _, _ := paperEngine(t)
	_, err := e.Query(`select nosuchdb.x`)
	if err == nil || !strings.Contains(err.Error(), "unknown name") {
		t.Errorf("unknown database: %v", err)
	}
}

func TestVirtualAtArc(t *testing.T) {
	// Time travel: at 31Dec96 Hakata does not exist, at 5Jan97 it does.
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select guide.<at 31Dec96>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(res); len(got) != 2 {
		t.Errorf("restaurants at 31Dec96 = %v, want 2", got)
	}
	res, err = e.Query(`select guide.<at 5Jan97>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 3 || !containsID(got, pids.Hakata) {
		t.Errorf("restaurants at 5Jan97 = %v, want 3 incl. Hakata", got)
	}
}

func TestVirtualAtValue(t *testing.T) {
	// The price value as of 31Dec96 is 10.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant.price<at 31Dec96>`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("price")
	foundOld := false
	for _, v := range vals {
		if v.Equal(value.Int(10)) {
			foundOld = true
		}
		if v.Equal(value.Int(20)) {
			t.Error("current price leaked into time-travel read")
		}
	}
	if !foundOld {
		t.Errorf("prices at 31Dec96 = %v, want to include 10", vals)
	}
}

func TestVirtualAtPropagates(t *testing.T) {
	// Stepping into the past keeps later steps in the past: Janta's parking
	// is visible at 5Jan97 but not today.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select R.parking.comment from guide.<at 5Jan97>restaurant R where R.name = "Janta"`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("comment")
	if len(vals) != 1 || !vals[0].Equal(value.Str("usually full")) {
		t.Errorf("time-travelled parking comment = %v", vals)
	}
	// Today the arc is gone.
	res, err = e.Query(`select R.parking.comment from guide.restaurant R where R.name = "Janta"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("removed parking arc visible in the present")
	}
}

func TestPollTimeResolution(t *testing.T) {
	e, pids, _ := paperEngine(t)
	e.SetPollTimes([]timestamp.Time{
		timestamp.MustParse("30Dec96"),
		timestamp.MustParse("31Dec96"),
		timestamp.MustParse("1Jan97"),
	})
	// t[0] = 1Jan97, t[-1] = 31Dec96; Hakata was created at 1Jan97 > t[-1].
	res, err := e.Query(`select guide.restaurant<cre at T> where T > t[-1]`)
	if err != nil {
		t.Fatal(err)
	}
	got := ids(res)
	if len(got) != 1 || got[0] != pids.Hakata {
		t.Errorf("new since t[-1] = %v, want [Hakata]", got)
	}
	// t[-5] is before the first poll: -infinity, so everything with a cre
	// annotation qualifies.
	res, err = e.Query(`select guide.restaurant<cre at T> where T > t[-5]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestAnswerMaterialization(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N, T, NV
		from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N`)
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer()
	if err := ans.Validate(); err != nil {
		t.Fatalf("answer invalid: %v", err)
	}
	// One row -> one complex child with three labeled subobjects
	// (paper Example 4.4's displayed answer).
	rows := ans.OutLabeled(ans.Root(), "answer")
	if len(rows) != 1 {
		t.Fatalf("answer rows = %d", len(rows))
	}
	rowNode := rows[0].Child
	for _, l := range []string{"name", "update-time", "new-value"} {
		if len(ans.OutLabeled(rowNode, l)) != 1 {
			t.Errorf("answer row missing %q child", l)
		}
	}
}

func TestAnswerSingleColumnCopiesSubtree(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant where guide.restaurant.name = "Bangkok Cuisine"`)
	if err != nil {
		t.Fatal(err)
	}
	ans := res.Answer()
	if err := ans.Validate(); err != nil {
		t.Fatal(err)
	}
	rests := ans.OutLabeled(ans.Root(), "restaurant")
	if len(rests) != 1 {
		t.Fatalf("answer restaurants = %d", len(rests))
	}
	// The copy includes subobjects, e.g. the cuisine atom.
	if len(ans.OutLabeled(rests[0].Child, "cuisine")) != 1 {
		t.Error("copied restaurant lost its cuisine subobject")
	}
}

// Engine.Eval on an already-canonicalized query must be reusable.
func TestEvalReuse(t *testing.T) {
	e, _, _ := paperEngine(t)
	q, err := Parse(`select guide.restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Canonicalize(q); err != nil {
		t.Fatal(err)
	}
	r1, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Error("repeated evaluation differs")
	}
}
