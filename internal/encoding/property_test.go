package encoding

import (
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
)

// TestEncodeDecodeRandomHistories: for random evolving guides, encoding and
// decoding round-trips to an isomorphic encoding, and the decoded database
// answers snapshot queries identically (structurally) to the original.
func TestEncodeDecodeRandomHistories(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		initial, h := guidegen.GenerateHistory(seed, 15, 5, 5)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		enc := Encode(d)
		if err := enc.DB.Validate(); err != nil {
			t.Fatalf("seed %d: encoding invalid: %v", seed, err)
		}
		back, err := Decode(enc.DB)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !oem.Isomorphic(Encode(back).DB, enc.DB) {
			t.Errorf("seed %d: re-encoding not isomorphic", seed)
		}
		if !oem.Isomorphic(back.Current(), d.Current()) {
			t.Errorf("seed %d: decoded current snapshot differs", seed)
		}
		if !oem.Isomorphic(back.Original(), d.Original()) {
			t.Errorf("seed %d: decoded original snapshot differs", seed)
		}
		// Every intermediate snapshot is preserved up to isomorphism.
		for _, step := range h {
			if !oem.Isomorphic(back.SnapshotAt(step.At), d.SnapshotAt(step.At)) {
				t.Errorf("seed %d: snapshot at %s differs after round trip", seed, step.At)
				break
			}
		}
	}
}

// TestEncodingCorrespondenceTables: Fwd and Rev are mutual inverses and
// cover exactly the DOEM objects.
func TestEncodingCorrespondenceTables(t *testing.T) {
	initial, h := guidegen.GenerateHistory(3, 20, 4, 5)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	enc := Encode(d)
	if len(enc.Fwd) != len(enc.Rev) {
		t.Fatalf("Fwd %d entries, Rev %d", len(enc.Fwd), len(enc.Rev))
	}
	for dID, eID := range enc.Fwd {
		if back, ok := enc.Rev[eID]; !ok || back != dID {
			t.Errorf("Rev(Fwd(%s)) = %s", dID, back)
		}
		// Every encoding object carries a &val arc.
		if len(enc.DB.OutLabeled(eID, LabelVal)) != 1 {
			t.Errorf("encoding object %s lacks &val", eID)
		}
	}
}
