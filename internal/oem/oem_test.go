package oem

import (
	"errors"
	"testing"

	"repro/internal/value"
)

// buildGuide constructs the paper's Figure 2 Guide database shape:
// two restaurants, mixed price types, string and complex addresses,
// a shared parking node and the parking/nearby-eats cycle.
func buildGuide(t testing.TB) (*Database, map[string]NodeID) {
	b := NewBuilder()
	guide := b.Root()

	bangkok := b.Complex("bangkok")
	b.Arc(guide, "restaurant", bangkok)
	b.AtomArc(bangkok, "name", value.Str("Bangkok Cuisine"))
	b.Arc(bangkok, "price", b.Atom("price", value.Int(10)))
	b.AtomArc(bangkok, "cuisine", value.Str("Thai"))
	addr := b.ComplexArc(bangkok, "address")
	b.AtomArc(addr, "street", value.Str("Lytton"))
	b.AtomArc(addr, "city", value.Str("Palo Alto"))

	janta := b.Complex("janta")
	b.Arc(guide, "restaurant", janta)
	b.AtomArc(janta, "name", value.Str("Janta"))
	b.AtomArc(janta, "price", value.Str("moderate"))
	b.AtomArc(janta, "address", value.Str("120 Lytton"))
	parking := b.Complex("parking")
	b.Arc(janta, "parking", parking)
	b.Arc(bangkok, "parking", parking) // shared node (paper's n7)
	b.AtomArc(parking, "comment", value.Str("usually full"))
	lot := b.AtomArc(parking, "address", value.Str("Lytton lot 2"))
	_ = lot
	// The cycle: parking.nearby-eats -> bangkok, bangkok.parking -> parking.
	b.Arc(parking, "nearby-eats", bangkok)

	db := b.Build()
	names := map[string]NodeID{
		"bangkok": b.Named("bangkok"),
		"janta":   b.Named("janta"),
		"parking": b.Named("parking"),
		"price":   b.Named("price"),
	}
	return db, names
}

func TestNewDatabase(t *testing.T) {
	db := New()
	if db.NumNodes() != 1 || db.NumArcs() != 0 {
		t.Fatalf("fresh db: nodes=%d arcs=%d", db.NumNodes(), db.NumArcs())
	}
	if !db.IsComplex(db.Root()) {
		t.Error("root must be complex")
	}
	if err := db.Validate(); err != nil {
		t.Errorf("fresh db invalid: %v", err)
	}
}

func TestBuildGuideShape(t *testing.T) {
	db, names := buildGuide(t)
	if err := db.Validate(); err != nil {
		t.Fatalf("guide invalid: %v", err)
	}
	// Two restaurant arcs from root.
	if got := len(db.OutLabeled(db.Root(), "restaurant")); got != 2 {
		t.Errorf("restaurant arcs = %d, want 2", got)
	}
	// Shared parking: two incoming "parking" arcs.
	inc := db.In(names["parking"])
	count := 0
	for _, a := range inc {
		if a.Label == "parking" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("parking node has %d incoming parking arcs, want 2", count)
	}
	// The cycle parking -> bangkok -> parking is traversable.
	found := false
	for _, a := range db.Out(names["parking"]) {
		if a.Label == "nearby-eats" && a.Child == names["bangkok"] {
			found = true
		}
	}
	if !found {
		t.Error("nearby-eats cycle arc missing")
	}
}

func TestCreateAndUpdateNode(t *testing.T) {
	db := New()
	n := db.CreateNode(value.Int(10))
	if v, ok := db.Value(n); !ok || !v.Equal(value.Int(10)) {
		t.Fatal("create/read failed")
	}
	if err := db.UpdateNode(n, value.Int(20)); err != nil {
		t.Fatal(err)
	}
	if v := db.MustValue(n); !v.Equal(value.Int(20)) {
		t.Errorf("after update: %s", v)
	}
	if err := db.UpdateNode(999, value.Int(1)); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("update missing node: %v", err)
	}
}

func TestUpdateComplexWithChildrenRejected(t *testing.T) {
	db := New()
	c := db.CreateNode(value.Complex())
	a := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "x", c); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(c, "y", a); err != nil {
		t.Fatal(err)
	}
	// Paper Section 2.1: must remove all subobjects before making atomic.
	if err := db.UpdateNode(c, value.Int(5)); !errors.Is(err, ErrHasChildren) {
		t.Errorf("update complex-with-children: %v, want ErrHasChildren", err)
	}
	if err := db.RemoveArc(c, "y", a); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateNode(c, value.Int(5)); err != nil {
		t.Errorf("update after removing children: %v", err)
	}
}

func TestAddArcValidation(t *testing.T) {
	db := New()
	atom := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "a", atom); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(db.Root(), "a", atom); !errors.Is(err, ErrArcExists) {
		t.Errorf("duplicate arc: %v", err)
	}
	if err := db.AddArc(atom, "b", db.Root()); !errors.Is(err, ErrNotComplex) {
		t.Errorf("arc from atomic: %v", err)
	}
	if err := db.AddArc(db.Root(), "c", 999); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("arc to missing: %v", err)
	}
	if err := db.AddArc(999, "c", atom); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("arc from missing: %v", err)
	}
	if err := db.AddArc(db.Root(), "", atom); !errors.Is(err, ErrEmptyLabel) {
		t.Errorf("empty label: %v", err)
	}
}

func TestRemoveArc(t *testing.T) {
	db := New()
	atom := db.CreateNode(value.Int(1))
	if err := db.RemoveArc(db.Root(), "a", atom); !errors.Is(err, ErrNoSuchArc) {
		t.Errorf("remove missing arc: %v", err)
	}
	if err := db.AddArc(db.Root(), "a", atom); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveArc(db.Root(), "a", atom); err != nil {
		t.Fatal(err)
	}
	if db.HasArc(db.Root(), "a", atom) {
		t.Error("arc still present after removal")
	}
	if len(db.Out(db.Root())) != 0 || len(db.In(atom)) != 0 {
		t.Error("adjacency lists not cleaned")
	}
}

func TestSameLabelMultipleChildren(t *testing.T) {
	// OEM allows several arcs with the same label from one parent
	// (guide has two "restaurant" arcs).
	db := New()
	a := db.CreateNode(value.Int(1))
	b := db.CreateNode(value.Int(2))
	if err := db.AddArc(db.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(db.Root(), "x", b); err != nil {
		t.Fatal(err)
	}
	if got := len(db.OutLabeled(db.Root(), "x")); got != 2 {
		t.Errorf("OutLabeled = %d, want 2", got)
	}
}

func TestGarbageCollect(t *testing.T) {
	db, names := buildGuide(t)
	before := db.NumNodes()
	// Remove the only path to Janta's address atom; Janta itself stays
	// reachable via the root.
	janta := names["janta"]
	var addrArc Arc
	for _, a := range db.Out(janta) {
		if a.Label == "address" {
			addrArc = a
		}
	}
	if err := db.RemoveArc(addrArc.Parent, addrArc.Label, addrArc.Child); err != nil {
		t.Fatal(err)
	}
	dead := db.GarbageCollect()
	if len(dead) != 1 || dead[0] != addrArc.Child {
		t.Errorf("GC removed %v, want [%s]", dead, addrArc.Child)
	}
	if db.NumNodes() != before-1 {
		t.Errorf("nodes = %d, want %d", db.NumNodes(), before-1)
	}
	if err := db.Validate(); err != nil {
		t.Errorf("post-GC invalid: %v", err)
	}
}

func TestGarbageCollectCycleDetached(t *testing.T) {
	// A detached cycle must be collected even though every node in it has
	// an incoming arc.
	db := New()
	a := db.CreateNode(value.Complex())
	c := db.CreateNode(value.Complex())
	if err := db.AddArc(db.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(a, "y", c); err != nil {
		t.Fatal(err)
	}
	if err := db.AddArc(c, "back", a); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveArc(db.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	dead := db.GarbageCollect()
	if len(dead) != 2 {
		t.Errorf("GC removed %d nodes, want 2 (detached cycle)", len(dead))
	}
	if db.NumArcs() != 0 {
		t.Errorf("arcs = %d, want 0", db.NumArcs())
	}
}

func TestIDsNotReused(t *testing.T) {
	db := New()
	a := db.CreateNode(value.Int(1))
	if err := db.AddArc(db.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveArc(db.Root(), "x", a); err != nil {
		t.Fatal(err)
	}
	db.GarbageCollect()
	b := db.CreateNode(value.Int(2))
	if b == a {
		t.Error("node id reused after deletion")
	}
}

func TestCreateNodeWithID(t *testing.T) {
	db := New()
	if err := db.CreateNodeWithID(42, value.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateNodeWithID(42, value.Int(8)); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate explicit id: %v", err)
	}
	if err := db.CreateNodeWithID(0, value.Int(8)); err == nil {
		t.Error("id 0 must be rejected")
	}
	// Allocation continues past explicit ids.
	n := db.CreateNode(value.Int(9))
	if n <= 42 {
		t.Errorf("allocator returned %d, must exceed explicit id 42", n)
	}
}

func TestCloneAndEqual(t *testing.T) {
	db, names := buildGuide(t)
	c := db.Clone()
	if !db.Equal(c) || !c.Equal(db) {
		t.Fatal("clone not equal to original")
	}
	// Mutating the clone must not affect the original.
	if err := c.UpdateNode(names["price"], value.Int(20)); err != nil {
		t.Fatal(err)
	}
	if db.Equal(c) {
		t.Error("databases equal after divergent update")
	}
	if v := db.MustValue(names["price"]); !v.Equal(value.Int(10)) {
		t.Error("original mutated through clone")
	}
}

func TestPreorderVisitsOnceAndPrunes(t *testing.T) {
	db, names := buildGuide(t)
	count := 0
	db.Preorder(db.Root(), func(n NodeID) bool {
		count++
		return true
	})
	if count != db.NumNodes() {
		t.Errorf("preorder visited %d, want %d (cycle must not loop)", count, db.NumNodes())
	}
	// Pruning below parking skips its private children.
	visited := make(map[NodeID]bool)
	db.Preorder(db.Root(), func(n NodeID) bool {
		visited[n] = true
		return n != names["parking"]
	})
	for _, a := range db.Out(names["parking"]) {
		if a.Label == "comment" && visited[a.Child] {
			t.Error("pruned child was visited")
		}
	}
}

func TestClosureAndCopySubgraph(t *testing.T) {
	db, names := buildGuide(t)
	cl := db.Closure([]NodeID{names["janta"]})
	// Janta's closure includes the shared parking node and, via the
	// nearby-eats cycle, Bangkok Cuisine too.
	if !cl[names["parking"]] || !cl[names["bangkok"]] {
		t.Error("closure missed nodes reachable through shared/cyclic arcs")
	}
	pkg, remap := db.CopySubgraph([]NodeID{names["janta"]}, "restaurant", nil)
	if err := pkg.Validate(); err != nil {
		t.Fatalf("packaged db invalid: %v", err)
	}
	if got := len(pkg.OutLabeled(pkg.Root(), "restaurant")); got != 1 {
		t.Errorf("packaged roots = %d, want 1", got)
	}
	if _, ok := remap[names["janta"]]; !ok {
		t.Error("remap missing janta")
	}
	// Stable remapping: packaging again with the same seed map reuses ids.
	pkg2, _ := db.CopySubgraph([]NodeID{names["janta"]}, "restaurant", remap)
	if !pkg.Equal(pkg2) {
		t.Error("repackaging with seeded remap not stable")
	}
}

func TestIsomorphic(t *testing.T) {
	a, _ := buildGuide(t)
	b, bn := buildGuide(t)
	if !Isomorphic(a, b) {
		t.Fatal("identically built databases not isomorphic")
	}
	if err := b.UpdateNode(bn["price"], value.Int(11)); err != nil {
		t.Fatal(err)
	}
	if Isomorphic(a, b) {
		t.Error("databases isomorphic after value change")
	}
}

func TestIsomorphicIgnoresIDs(t *testing.T) {
	// Build the same tree with an extra throwaway node so ids shift.
	build := func(padding int) *Database {
		db := New()
		for i := 0; i < padding; i++ {
			x := db.CreateNode(value.Int(int64(i)))
			if err := db.AddArc(db.Root(), "pad", x); err != nil {
				t.Fatal(err)
			}
			if err := db.RemoveArc(db.Root(), "pad", x); err != nil {
				t.Fatal(err)
			}
		}
		db.GarbageCollect()
		c := db.CreateNode(value.Complex())
		if err := db.AddArc(db.Root(), "r", c); err != nil {
			t.Fatal(err)
		}
		n := db.CreateNode(value.Str("x"))
		if err := db.AddArc(c, "name", n); err != nil {
			t.Fatal(err)
		}
		return db
	}
	if !Isomorphic(build(0), build(5)) {
		t.Error("isomorphism must not depend on node ids")
	}
}

func TestArcsAndNodesDeterministic(t *testing.T) {
	db, _ := buildGuide(t)
	a1, a2 := db.Arcs(), db.Arcs()
	if len(a1) != len(a2) || len(a1) != db.NumArcs() {
		t.Fatal("Arcs() inconsistent")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("Arcs() not deterministic")
		}
	}
	n1, n2 := db.Nodes(), db.Nodes()
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("Nodes() not deterministic")
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db := New()
	orphan := db.CreateNode(value.Int(1))
	_ = orphan
	if err := db.Validate(); err == nil {
		t.Error("unreachable node not caught by Validate")
	}
}
