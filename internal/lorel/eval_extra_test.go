package lorel

import (
	"strings"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/value"
)

// TestLorelOnDOEMEqualsCurrentSnapshot checks the paper's stated property:
// "a standard Lorel query (without annotations) over a DOEM database has
// exactly the semantics of the same query asked over the current snapshot".
// We run a battery of plain Lorel queries against both and compare.
func TestLorelOnDOEMEqualsCurrentSnapshot(t *testing.T) {
	initial, h := guidegen.GenerateHistory(9, 40, 8, 6)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	onDOEM := NewEngine()
	onDOEM.Register("guide", d)
	onSnap := NewEngine()
	onSnap.Register("guide", NewOEMGraph(d.Current()))

	queries := []string{
		`select guide.restaurant`,
		`select guide.restaurant.name`,
		`select N from guide.restaurant R, R.name N where R.price < 20`,
		`select N from guide.restaurant R, R.name N where R.cuisine = "Thai"`,
		`select guide.restaurant where guide.restaurant.address.# like "%Lytton%"`,
		`select guide.restaurant.parking.comment`,
		`select N from guide.restaurant R, R.name N where not R.price = 10`,
		`select N from guide.restaurant R, R.name N where exists P in R.price : P > 30`,
		`select R.price + 1 as bumped from guide.restaurant R`,
		`select guide.#.street`,
	}
	for _, q := range queries {
		a, err := onDOEM.Query(q)
		if err != nil {
			t.Errorf("%q on DOEM: %v", q, err)
			continue
		}
		b, err := onSnap.Query(q)
		if err != nil {
			t.Errorf("%q on snapshot: %v", q, err)
			continue
		}
		if a.Len() != b.Len() {
			t.Errorf("%q: DOEM %d rows, snapshot %d rows", q, a.Len(), b.Len())
			continue
		}
		// Node ids coincide (the DOEM current snapshot preserves ids).
		an, bn := a.FirstColumnNodes(), b.FirstColumnNodes()
		for i := range an {
			if an[i] != bn[i] {
				t.Errorf("%q: row %d node %s vs %s", q, i, an[i], bn[i])
			}
		}
	}
}

func TestSelectAsLabel(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select R.name as title from guide.restaurant R where R.cuisine = "Thai"`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("title")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("title column = %v", vals)
	}
}

func TestSelfJoinIndependentRangeVars(t *testing.T) {
	// Two explicit range variables over the same path are independent
	// iterations (OQL semantics): pairs of distinct restaurants exist.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N1, N2 from guide.restaurant R1, guide.restaurant R2,
		R1.name N1, R2.name N2 where N1 < N2`)
	if err != nil {
		t.Fatal(err)
	}
	// Names: Bangkok Cuisine, Janta, Hakata -> 3 ordered pairs.
	if res.Len() != 3 {
		t.Errorf("ordered name pairs = %d, want 3\n%s", res.Len(), res)
	}
}

func TestQuotedLabelStep(t *testing.T) {
	e, _, d := paperEngine(t)
	_ = d
	res, err := e.Query(`select guide."restaurant".name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("quoted-label rows = %d, want 3", res.Len())
	}
	// Quoted labels match literally: a quoted glob finds nothing.
	res, err = e.Query(`select guide."rest%".name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("quoted glob matched %d rows, want 0", res.Len())
	}
}

func TestGlobLabelUnquoted(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.rest%.name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("glob rows = %d, want 3", res.Len())
	}
}

func TestNestedExists(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N
		where exists A in R.address : exists S in A.street : S = "Lytton"`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("name")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("nested exists names = %v", vals)
	}
}

func TestComparisonCoercionsInQueries(t *testing.T) {
	e, _, _ := paperEngine(t)
	// String-to-number coercion in predicates: Janta's price is the string
	// "moderate", which fails to coerce — no error, just no match.
	res, err := e.Query(`select N from guide.restaurant R, R.name N where R.price > 0`)
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values("name")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("numeric predicate matched %v", vals)
	}
	// But string equality sees it.
	res, err = e.Query(`select N from guide.restaurant R, R.name N where R.price = "moderate"`)
	if err != nil {
		t.Fatal(err)
	}
	vals = res.Values("name")
	if len(vals) != 1 || !vals[0].Equal(value.Str("Janta")) {
		t.Errorf("string predicate matched %v", vals)
	}
}

func TestTimeComparisonWithStrings(t *testing.T) {
	// Timestamp values compare against quoted strings in any recognized
	// format (Section 4.2's coercion).
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant<cre at T> where T >= "1997-01-01"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("ISO-string time filter rows = %d, want 1", res.Len())
	}
}

func TestDivisionAndPrecedence(t *testing.T) {
	e, _, _ := paperEngine(t)
	// price=20 -> 20/2+30 = 40; precedence: / before +.
	res, err := e.Query(`select N from guide.restaurant R, R.name N
		where R.price / 2 + 30 = 40`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("arith rows = %d, want 1\n%s", res.Len(), res)
	}
	// Division by zero is a silent non-match, not an error.
	res, err = e.Query(`select N from guide.restaurant R, R.name N where R.price / 0 = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("division by zero matched %d rows", res.Len())
	}
}

func TestUnaryMinus(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N where R.price > -5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("negative literal rows = %d, want 1", res.Len())
	}
}

func TestMultipleAnnotatedStepsInOnePath(t *testing.T) {
	// Arc and node annotations on the same step: the restaurant arc added
	// at T whose target was created at C — both bind.
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select R, T, C from guide.<add at T>restaurant<cre at C> R`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	got := res.Nodes("restaurant")
	if len(got) != 1 || got[0] != pids.Hakata {
		t.Errorf("node = %v", got)
	}
	ts := res.Values("add-time")
	cs := res.Values("create-time")
	if len(ts) != 1 || len(cs) != 1 || !ts[0].Equal(cs[0]) {
		t.Errorf("times: add=%v cre=%v (both 1Jan97 expected)", ts, cs)
	}
}

func TestEmptySelectFromAbsentPath(t *testing.T) {
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select guide.restaurant.nonexistent`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("rows = %d for absent label", res.Len())
	}
}

func TestWhereOnlyTimeRef(t *testing.T) {
	e, _, _ := paperEngine(t)
	e.SetPollTimes(nil)
	// t[0] with no polls is -inf; comparing against it.
	res, err := e.Query(`select guide.restaurant<cre at T> where T > t[0]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	e, _, _ := paperEngine(t)
	_, err := e.Query(`select guide.restaurant where nosuch.price = 1`)
	if err == nil {
		t.Fatal("unknown head accepted")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks position info: %v", err)
	}
}

// TestLargeFanoutDeduplication guards against exponential blowup: shared
// nodes reached through many paths are deduplicated per step.
func TestLargeFanoutDeduplication(t *testing.T) {
	db := buildFanout(40)
	e := NewEngine()
	e.Register("db", NewOEMGraph(db))
	res, err := e.Query(`select db.a.b.c.leaf`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d, want 1 (shared leaf)", res.Len())
	}
}

// buildFanout builds root -> 40x a -> shared b -> 40x c -> shared leaf.
func buildFanout(n int) *oem.Database {
	db := oem.New()
	shared1 := db.CreateNode(value.Complex())
	leaf := db.CreateNode(value.Str("x"))
	for i := 0; i < n; i++ {
		a := db.CreateNode(value.Complex())
		mustArcT(db, db.Root(), "a", a)
		mustArcT(db, a, "b", shared1)
	}
	for i := 0; i < n; i++ {
		c := db.CreateNode(value.Complex())
		mustArcT(db, shared1, "c", c)
		mustArcT(db, c, "leaf", leaf)
	}
	return db
}

func mustArcT(db *oem.Database, p oem.NodeID, l string, c oem.NodeID) {
	if err := db.AddArc(p, l, c); err != nil {
		panic(err)
	}
}

func TestAggregates(t *testing.T) {
	e, _, _ := paperEngine(t)
	// count of restaurants per guide root.
	res, err := e.Query(`select count(guide.restaurant) as n`)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Values("n"); len(v) != 1 || !v[0].Equal(value.Int(3)) {
		t.Errorf("count = %v, want [3]", v)
	}
	// Per-tuple aggregation: comment count per restaurant.
	res, err = e.Query(`select N, count(R.comment) as c from guide.restaurant R, R.name N`)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, row := range res.Rows {
		n, _ := row.Cell("name")
		c, _ := row.Cell("c")
		nv, _ := n.Value()
		cv, _ := c.Value()
		byName[nv.Display()] = cv.AsInt()
	}
	if byName["Hakata"] != 1 || byName["Janta"] != 0 {
		t.Errorf("comment counts = %v", byName)
	}
	// Aggregates in predicates.
	res, err = e.Query(`select N from guide.restaurant R, R.name N where count(R.comment) >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values("name")
	if len(v) != 1 || !v[0].Equal(value.Str("Hakata")) {
		t.Errorf("filtered = %v", v)
	}
	// min/max/sum/avg over prices (only Bangkok's 20 coerces; Janta's
	// string "moderate" folds only for min/max comparisons).
	res, err = e.Query(`select sum(guide.restaurant.price) as s, max(guide.restaurant.price) as m`)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Values("s"); len(v) != 1 {
		t.Errorf("sum column = %v", v)
	}
	// avg over an empty set yields the null value.
	res, err = e.Query(`select avg(guide.restaurant.nonexistent) as a`)
	if err != nil {
		t.Fatal(err)
	}
	if vs := res.Values("a"); len(vs) != 1 || vs[0].Kind() != value.KindNull {
		t.Errorf("avg over empty = %v, want [null]", vs)
	}
}

func TestAggregateOverAnnotations(t *testing.T) {
	// count of upd annotations — "books checked out twice" made direct.
	e, _, _ := paperEngine(t)
	res, err := e.Query(`select N from guide.restaurant R, R.name N
		where count(R.price<upd at T>) >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values("name")
	if len(v) != 1 || !v[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("annotated count = %v", v)
	}
}

// TestAnnotationOnGlobLabel: the paper defers annotation expressions on
// wildcards; the '%' label glob composes with annotations already, giving
// "any label added at T" queries.
func TestAnnotationOnGlobLabel(t *testing.T) {
	e, pids, _ := paperEngine(t)
	res, err := e.Query(`select X, T from guide.restaurant R, R.<add at T>% X`)
	if err != nil {
		t.Fatal(err)
	}
	// Arcs added below restaurants: Hakata's name (t1) and comment (t2).
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", res.Len(), res)
	}
	for _, row := range res.Rows {
		c, _ := row.Cell("object")
		_ = c
	}
	_ = pids
	ts := res.Values("add-time")
	if len(ts) != 2 {
		t.Errorf("add-times = %v", ts)
	}
}
