package lorel

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Result is the outcome of evaluating a query: a deduplicated sequence of
// rows. Rows reference nodes in the queried graphs; Answer materializes a
// self-contained OEM database in the paper's "answer object" style.
type Result struct {
	Rows []Row
}

// Row is one result tuple.
type Row struct {
	Cells []Cell
}

// Cell is one labeled column of a row: either a graph object or an atomic
// value (e.g. an annotation timestamp).
type Cell struct {
	Label string
	b     binding
}

// IsNode reports whether the cell holds a graph object.
func (c Cell) IsNode() bool { return c.b.kind == bNode }

// IsNull reports whether the cell is null (an empty existential binding).
func (c Cell) IsNull() bool { return c.b.kind == bNull }

// Node returns the object id for node cells.
func (c Cell) Node() oem.NodeID { return c.b.id }

// Graph returns the graph the cell's node belongs to.
func (c Cell) Graph() Graph { return c.b.g }

// AsOf returns the time-travel instant of the cell, if the node was reached
// through a virtual <at T> annotation.
func (c Cell) AsOf() (timestamp.Time, bool) { return c.b.asOf, c.b.hasAsOf }

// Value returns the value the cell denotes: the atomic value itself, or the
// (possibly time-travelled) value of the node.
func (c Cell) Value() (value.Value, bool) { return c.b.valueOf() }

// key returns the row's dedup key. Every component is length-prefixed so
// labels or rendered values containing the join punctuation of adjacent
// components cannot make two distinct rows collide.
func (r Row) key() string { return string(r.appendKey(nil)) }

// appendKey appends the row's dedup key to dst, reusing dst's capacity so
// hot dedup loops can probe the seen-set without allocating per row.
func (r Row) appendKey(dst []byte) []byte {
	var kb [64]byte
	for _, c := range r.Cells {
		k := c.b.appendKey(kb[:0])
		dst = strconv.AppendInt(dst, int64(len(c.Label)), 10)
		dst = append(dst, ':')
		dst = append(dst, c.Label...)
		dst = strconv.AppendInt(dst, int64(len(k)), 10)
		dst = append(dst, ':')
		dst = append(dst, k...)
	}
	return dst
}

// Cell returns the first cell with the given label.
func (r Row) Cell(label string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Label == label {
			return c, true
		}
	}
	return Cell{}, false
}

// Len returns the number of rows.
func (res *Result) Len() int { return len(res.Rows) }

// Nodes returns the object ids in the given column across all rows.
func (res *Result) Nodes(label string) []oem.NodeID {
	var ids []oem.NodeID
	for _, row := range res.Rows {
		if c, ok := row.Cell(label); ok && c.IsNode() {
			ids = append(ids, c.Node())
		}
	}
	return ids
}

// Values returns the values in the given column across all rows.
func (res *Result) Values(label string) []value.Value {
	var vs []value.Value
	for _, row := range res.Rows {
		if c, ok := row.Cell(label); ok {
			if v, okv := c.Value(); okv {
				vs = append(vs, v)
			}
		}
	}
	return vs
}

// FirstColumnNodes returns the node ids of the first column — the common
// single-projection case ("select guide.restaurant").
func (res *Result) FirstColumnNodes() []oem.NodeID {
	var ids []oem.NodeID
	for _, row := range res.Rows {
		if len(row.Cells) > 0 && row.Cells[0].IsNode() {
			ids = append(ids, row.Cells[0].Node())
		}
	}
	return ids
}

// String renders the result as a small table for display.
func (res *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d row(s)\n", len(res.Rows))
	for _, row := range res.Rows {
		for i, c := range row.Cells {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Label)
			b.WriteString(": ")
			b.WriteString(c.describe())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (c Cell) describe() string {
	switch c.b.kind {
	case bNull:
		return "null"
	case bValue:
		return c.b.val.String()
	default:
		v, ok := c.Value()
		if !ok {
			return c.b.id.String()
		}
		if v.IsComplex() {
			return c.b.id.String() + "{...}"
		}
		return v.String()
	}
}

// Answer materializes the result as an OEM database rooted at an "answer"
// object, in the style of the paper's Example 4.4: one child per row; rows
// with a single column attach the object or value directly under its label,
// multi-column rows become complex objects with one labeled child per cell.
// Node cells copy the current-snapshot subobject closure of the node.
func (res *Result) Answer() *oem.Database {
	out := oem.New()
	for _, row := range res.Rows {
		var parent oem.NodeID
		if len(row.Cells) == 1 {
			parent = out.Root()
		} else {
			p := out.CreateNode(value.Complex())
			mustAdd(out, out.Root(), "answer", p)
			parent = p
		}
		for _, c := range row.Cells {
			label := c.Label
			if label == "" {
				label = "value"
			}
			switch c.b.kind {
			case bNull:
				continue
			case bValue:
				n := out.CreateNode(c.b.val)
				mustAdd(out, parent, label, n)
			case bNode:
				copied := copyNodeInto(out, c.b)
				mustAdd(out, parent, label, copied)
			}
		}
	}
	return out
}

// copyNodeInto copies the subobject closure of a bound node into dst and
// returns the copy's id. Traversal respects the binding's time-travel
// instant when present.
func copyNodeInto(dst *oem.Database, b binding) oem.NodeID {
	remap := make(map[oem.NodeID]oem.NodeID)
	g := b.g
	var copyNode func(n oem.NodeID) oem.NodeID
	copyNode = func(n oem.NodeID) oem.NodeID {
		if id, ok := remap[n]; ok {
			return id
		}
		var v value.Value
		if b.hasAsOf {
			v = g.ValueAt(n, b.asOf)
		} else {
			v, _ = g.Value(n)
		}
		id := dst.CreateNode(v)
		remap[n] = id
		var arcs []oem.Arc
		if b.hasAsOf {
			for _, a := range g.OutAll(n) {
				if g.ArcLiveAt(a, b.asOf) {
					arcs = append(arcs, a)
				}
			}
		} else {
			arcs = g.Out(n)
		}
		for _, a := range arcs {
			child := copyNode(a.Child)
			mustAdd(dst, id, a.Label, child)
		}
		return id
	}
	return copyNode(b.id)
}

func mustAdd(db *oem.Database, p oem.NodeID, l string, c oem.NodeID) {
	if err := db.AddArc(p, l, c); err != nil {
		panic(fmt.Sprintf("lorel: answer construction: %v", err))
	}
}
