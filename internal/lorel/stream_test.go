package lorel

import (
	"fmt"
	"testing"

	"repro/internal/oem"
	"repro/internal/symbol"
	"repro/internal/value"
)

// itemEngine builds an engine over a flat OEM database: the root carries n
// "item" arcs to atomic integer nodes 0..n-1 in insertion order, with the
// value `witness` placed at position pos instead of pos's natural value.
func itemEngine(t testing.TB, n, pos int, witness int64) *Engine {
	t.Helper()
	db := oem.New()
	for i := 0; i < n; i++ {
		v := int64(i) + 1000
		if i == pos {
			v = witness
		}
		c := db.CreateNode(value.Int(v))
		if err := db.AddArc(db.Root(), "item", c); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine()
	e.Register("guide", NewOEMGraph(db))
	return e
}

// existsBindings runs an exists query against a database whose witness sits
// at position pos and returns the bindings stat (candidates examined).
func existsBindings(t *testing.T, pos int) int64 {
	t.Helper()
	e := itemEngine(t, 500, pos, 7)
	_, tr := tracedQuery(t, e, `select guide where exists X in guide.item : X = 7`)
	return tr.Stats()["bindings"]
}

// TestExistsShortCircuit is the regression test for the exists
// over-materialization bug: the evaluator used to expand the full binding
// list of the exists path before testing a single candidate, so an exists
// whose witness was the first candidate still paid for all 500. The
// streaming walk must do work proportional to the witness's position.
func TestExistsShortCircuit(t *testing.T) {
	early := existsBindings(t, 0)
	late := existsBindings(t, 499)
	if early > 8 {
		t.Errorf("early witness examined %d candidates, want at most a handful", early)
	}
	if late < 400 {
		t.Errorf("late witness examined %d candidates, want ~500", late)
	}
	if early*10 >= late {
		t.Errorf("early witness (%d bindings) not an order cheaper than late (%d)", early, late)
	}
}

// TestExistsShortCircuitWithoutStreaming pins the satellite requirement
// that the exists fix holds independent of the iterator refactor: turning
// the streaming gate off must not bring the over-materialization back.
func TestExistsShortCircuitWithoutStreaming(t *testing.T) {
	prev := SetStreaming(false)
	defer SetStreaming(prev)
	early := existsBindings(t, 0)
	if early > 8 {
		t.Errorf("early witness examined %d candidates with streaming off, want at most a handful", early)
	}
}

// TestExistsNoWitness: when no candidate satisfies, every candidate must
// still be examined and the result must be empty — short-circuiting must
// not turn into under-evaluation.
func TestExistsNoWitness(t *testing.T) {
	e := itemEngine(t, 100, 0, 1000) // witness value 7 nowhere present
	res, tr := tracedQuery(t, e, `select guide where exists X in guide.item : X = 7`)
	if len(res.Rows) != 0 {
		t.Errorf("want no rows, got %d", len(res.Rows))
	}
	if b := tr.Stats()["bindings"]; b < 100 {
		t.Errorf("unsatisfied exists examined only %d candidates, want all 100", b)
	}
}

// TestExistentialNullBindNoShadow is the regression test for the
// null-binding shadow bug: an empty existential generator null-binds its
// annotation variables, and used to null-bind even variables already bound
// by an enclosing strict generator — wiping out, e.g., the T bound by
// <add at T> when a where-clause path reusing T matched nothing.
func TestExistentialNullBindNoShadow(t *testing.T) {
	e, _, _ := paperEngine(t)

	// Baseline: the (R, T) pairs the strict generator produces.
	base, err := e.Query(`select T from guide.<add at T>restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) == 0 {
		t.Fatal("baseline query produced no rows")
	}

	// The hoistable path R.<rem at T>zzz matches nothing (no zzz arcs), so
	// its existential generator is empty and null-binds. The disjunct
	// T >= 1Jan80 is then the only way a row survives — true for every
	// real add-time, false for a shadowed null T.
	// Compare the T column values only: the rem annotation in the where
	// clause legitimately changes T's default column label, but the times
	// themselves must be the strict generator's, not nulls.
	times := func(res *Result) []string {
		var out []string
		for _, row := range res.Rows {
			v, ok := row.Cells[0].Value()
			if !ok {
				out = append(out, "<null>")
				continue
			}
			out = append(out, v.String())
		}
		return out
	}
	want := fmt.Sprint(times(base))

	got, err := e.Query(`select T from guide.<add at T>restaurant R where R.<rem at T>zzz = "x" or T >= 1Jan80`)
	if err != nil {
		t.Fatal(err)
	}
	if g := fmt.Sprint(times(got)); g != want {
		t.Errorf("empty existential generator shadowed bound T: want %s, got %s", want, g)
	}

	// Same property on the legacy materializing enumerator.
	prev := SetStreaming(false)
	defer SetStreaming(prev)
	got2, err := e.Query(`select T from guide.<add at T>restaurant R where R.<rem at T>zzz = "x" or T >= 1Jan80`)
	if err != nil {
		t.Fatal(err)
	}
	if g := fmt.Sprint(times(got2)); g != want {
		t.Errorf("legacy enumerator shadowed bound T: want %s, got %s", want, g)
	}
}

// TestParseCacheRotation exercises the two-generation parse cache: a
// standing query must keep its parsed form across cache churn past the
// limit (promotion from the old generation), total retention must stay
// bounded, and an entry idle for two full generations must be dropped.
func TestParseCacheRotation(t *testing.T) {
	e := NewEngine()
	ctx := t.Context()
	const standing = `select guide.restaurant`

	q1, err := e.cachedQuery(ctx, standing)
	if err != nil {
		t.Fatal(err)
	}

	churn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if _, err := e.cachedQuery(ctx, fmt.Sprintf("select guide.l%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// One generation of churn rotates the standing entry into the old
	// generation; re-requesting it must return the same parsed object.
	churn(0, cacheLimit)
	q2, err := e.cachedQuery(ctx, standing)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("standing query re-parsed after one generation of churn; want promotion from old generation")
	}

	// Bounded retention: never more than two generations resident.
	churn(cacheLimit, 3*cacheLimit)
	if total := len(e.cache) + len(e.cacheOld); total > 2*cacheLimit {
		t.Errorf("cache retains %d entries, want <= %d", total, 2*cacheLimit)
	}

	// The standing entry was not touched during the last two generations
	// of churn, so it must have aged out: a fresh parse yields a new object.
	q3, err := e.cachedQuery(ctx, standing)
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q3 {
		t.Error("standing query survived two untouched generations; eviction is not bounding the cache")
	}
}

// TestRowKeyAllocs guards the dedup hot path: appending a row key into a
// reused buffer must not allocate.
func TestRowKeyAllocs(t *testing.T) {
	row := Row{Cells: []Cell{
		{Label: "R", b: binding{kind: bValue, val: value.Str("thai garden")}},
		{Label: "T", b: binding{kind: bValue, val: value.Int(42)}},
	}}
	kb := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		kb = row.appendKey(kb[:0])
	})
	if allocs != 0 {
		t.Errorf("row.appendKey allocates %.1f per call on a warm buffer, want 0", allocs)
	}
}

// TestStepMatchAllocs guards the per-arc label match: once a step context
// is initialized, matching candidate labels must not allocate, interned or
// not.
func TestStepMatchAllocs(t *testing.T) {
	label := "restaurant"
	symbol.Intern(label)
	var st stepCtx
	st.init(&PathStep{Label: label})
	if !st.match(label) {
		t.Fatal("step does not match its own label")
	}
	allocs := testing.AllocsPerRun(200, func() {
		st.match(label)
		st.match("other")
	})
	if allocs != 0 {
		t.Errorf("stepCtx.match allocates %.1f per call, want 0", allocs)
	}
}
