// Package lore is a small storage manager standing in for the Lore DBMS the
// paper builds on: it keeps named OEM and DOEM databases, persists them
// atomically to a directory, and maintains the secondary indexes the paper
// proposes as future work (label, value, and annotation indexes) for the
// index-ablation experiment.
package lore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/doem"
	"repro/internal/oem"
	"repro/internal/oemio"
)

// Store manages named databases under a directory. The in-memory databases
// are authoritative; Put persists, Open loads everything found on disk.
// A Store with an empty directory is purely in-memory.
type Store struct {
	dir string

	mu    sync.RWMutex
	oems  map[string]*oem.Database
	doems map[string]*doem.Database
}

// ErrNotFound reports a missing database name.
var ErrNotFound = errors.New("lore: database not found")

const (
	oemExt  = ".oem.json"
	doemExt = ".doem.json"
)

// Open loads a store from dir, creating the directory if needed. An empty
// dir yields an in-memory store.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:   dir,
		oems:  make(map[string]*oem.Database),
		doems: make(map[string]*doem.Database),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lore: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, oemExt):
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("lore: %w", err)
			}
			db, err := oemio.Unmarshal(data)
			if err != nil {
				return nil, fmt.Errorf("lore: loading %s: %w", name, err)
			}
			s.oems[strings.TrimSuffix(name, oemExt)] = db
		case strings.HasSuffix(name, doemExt):
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("lore: %w", err)
			}
			d, err := doem.Unmarshal(data)
			if err != nil {
				return nil, fmt.Errorf("lore: loading %s: %w", name, err)
			}
			s.doems[strings.TrimSuffix(name, doemExt)] = d
		}
	}
	return s, nil
}

// PutOEM stores (and persists) an OEM database under name.
func (s *Store) PutOEM(name string, db *oem.Database) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.oems[name] = db
	if s.dir == "" {
		return nil
	}
	data, err := oemio.Marshal(db)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, name+oemExt), data)
}

// GetOEM retrieves an OEM database by name.
func (s *Store) GetOEM(name string) (*oem.Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	db, ok := s.oems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return db, nil
}

// PutDOEM stores (and persists) a DOEM database under name.
func (s *Store) PutDOEM(name string, d *doem.Database) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doems[name] = d
	if s.dir == "" {
		return nil
	}
	data, err := d.Marshal()
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, name+doemExt), data)
}

// GetDOEM retrieves a DOEM database by name.
func (s *Store) GetDOEM(name string) (*doem.Database, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.doems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return d, nil
}

// Delete removes a database (either kind) and its files.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, hadOEM := s.oems[name]
	_, hadDOEM := s.doems[name]
	if !hadOEM && !hadDOEM {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.oems, name)
	delete(s.doems, name)
	if s.dir == "" {
		return nil
	}
	for _, ext := range []string{oemExt, doemExt} {
		path := filepath.Join(s.dir, name+ext)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("lore: %w", err)
		}
	}
	return nil
}

// List returns all database names, sorted, with their kind ("oem"/"doem").
func (s *Store) List() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for n := range s.oems {
		out = append(out, Entry{Name: n, Kind: "oem"})
	}
	for n := range s.doems {
		out = append(out, Entry{Name: n, Kind: "doem"})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Entry describes one stored database.
type Entry struct {
	Name string
	Kind string
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("lore: invalid database name %q", name)
	}
	return nil
}

// atomicWrite writes data to path via a temporary file and rename, so a
// crash never leaves a torn file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("lore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lore: %w", err)
	}
	return nil
}
