package trigger

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func newManager(t *testing.T) (*Manager, *guidegen.PaperIDs) {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	return NewManager("guide", doem.New(db)), ids
}

func TestPriceUpdateTrigger(t *testing.T) {
	m, ids := newManager(t)
	var fired []Firing
	err := m.Add(Trigger{
		Name: "price-watch",
		Query: `select N, NV from guide.restaurant R, R.name N, R.price<upd at T to NV>
			where T > t[-1] and NV > 15`,
		Action: func(f Firing) error { fired = append(fired, f); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// An unrelated change does not fire.
	if err := m.Apply(timestamp.MustParse("1Jan97"), change.Set{
		change.CreNode{Node: 500, Value: value.Str("note")},
		change.AddArc{Parent: ids.Bangkok, Label: "comment", Child: 500},
	}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("unrelated change fired trigger: %v", fired)
	}
	// A qualifying price update fires once with the right bindings.
	if err := m.Apply(timestamp.MustParse("2Jan97"), change.Set{
		change.UpdNode{Node: ids.Price, Value: value.Int(20)},
	}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("fired %d times, want 1", len(fired))
	}
	f := fired[0]
	if f.Trigger != "price-watch" || f.Depth != 0 {
		t.Errorf("firing = %+v", f)
	}
	names := f.Result.Values("name")
	if len(names) != 1 || !names[0].Equal(value.Str("Bangkok Cuisine")) {
		t.Errorf("names = %v", names)
	}
	// A below-threshold update does not fire (condition part).
	if err := m.Apply(timestamp.MustParse("3Jan97"), change.Set{
		change.UpdNode{Node: ids.Price, Value: value.Int(12)},
	}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Errorf("below-threshold update fired")
	}
}

func TestEventScopedToLatestStep(t *testing.T) {
	// The t[-1] guard means old events do not re-fire on later steps.
	m, ids := newManager(t)
	count := 0
	err := m.Add(Trigger{
		Name:   "new-restaurants",
		Query:  `select guide.<add at T>restaurant where T > t[-1]`,
		Action: func(Firing) error { count++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(guidegen.T1, change.Set{
		change.CreNode{Node: 100, Value: value.Complex()},
		change.CreNode{Node: 101, Value: value.Str("Hakata")},
		change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 100},
		change.AddArc{Parent: 100, Label: "name", Child: 101},
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d after addition", count)
	}
	// A later unrelated step must not re-fire on the old addition.
	if err := m.Apply(guidegen.T2, change.Set{
		change.UpdNode{Node: ids.Price, Value: value.Int(11)},
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("old event re-fired: count = %d", count)
	}
}

func TestCascade(t *testing.T) {
	// A trigger that reacts to new restaurants by stamping them with a
	// "status: unreviewed" child — applied through Queue, observed by a
	// second trigger.
	m, ids := newManager(t)
	var stamped, observed int
	nextID := oem.NodeID(1000)
	err := m.Add(Trigger{
		Name:  "stamp-new",
		Query: `select R from guide.<add at T>restaurant R where T > t[-1]`,
		Action: func(f Firing) error {
			stamped++
			for _, id := range f.Result.FirstColumnNodes() {
				nextID++
				m.Queue(change.Set{
					change.CreNode{Node: nextID, Value: value.Str("unreviewed")},
					change.AddArc{Parent: id, Label: "status", Child: nextID},
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Add(Trigger{
		Name:   "watch-status",
		Query:  `select guide.restaurant.<add at T>status where T > t[-1]`,
		Action: func(f Firing) error { observed++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(guidegen.T1, change.Set{
		change.CreNode{Node: 100, Value: value.Complex()},
		change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 100},
	}); err != nil {
		t.Fatal(err)
	}
	if stamped != 1 || observed != 1 {
		t.Errorf("stamped=%d observed=%d, want 1/1", stamped, observed)
	}
	// The cascaded change is in the history, at a later instant.
	d := m.DOEM()
	if got := len(d.Current().OutLabeled(100, "status")); got != 1 {
		t.Errorf("status children = %d", got)
	}
	if len(d.Steps()) != 2 {
		t.Errorf("steps = %d, want 2 (original + cascaded)", len(d.Steps()))
	}
}

func TestCascadeDepthLimit(t *testing.T) {
	// A self-perpetuating trigger hits the depth limit instead of looping.
	m, ids := newManager(t)
	nextID := oem.NodeID(2000)
	err := m.Add(Trigger{
		Name:  "loop",
		Query: `select guide.restaurant.<add at T>echo where T > t[-1]`,
		Action: func(f Firing) error {
			nextID++
			m.Queue(change.Set{
				change.CreNode{Node: nextID, Value: value.Str("echo")},
				change.AddArc{Parent: ids.Bangkok, Label: "echo", Child: nextID},
			})
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.MaxCascade = 3
	seed := change.Set{
		change.CreNode{Node: 1999, Value: value.Str("echo")},
		change.AddArc{Parent: ids.Bangkok, Label: "echo", Child: 1999},
	}
	err = m.Apply(guidegen.T1, seed)
	if !errors.Is(err, ErrCascadeDepth) {
		t.Errorf("runaway cascade: %v, want ErrCascadeDepth", err)
	}
}

func TestActionErrorAborts(t *testing.T) {
	m, ids := newManager(t)
	boom := fmt.Errorf("action exploded")
	err := m.Add(Trigger{
		Name:   "bad",
		Query:  `select guide.restaurant.price<upd at T> where T > t[-1]`,
		Action: func(Firing) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Apply(guidegen.T1, change.Set{
		change.UpdNode{Node: ids.Price, Value: value.Int(20)},
	})
	if !errors.Is(err, boom) {
		t.Errorf("Apply error = %v, want wrapped action error", err)
	}
	// The triggering change itself was applied (actions observe it).
	if v := m.DOEM().Current().MustValue(ids.Price); !v.Equal(value.Int(20)) {
		t.Error("triggering change rolled back unexpectedly")
	}
}

func TestManagerAdminOps(t *testing.T) {
	m, _ := newManager(t)
	tr := Trigger{Name: "x", Query: "select guide.restaurant", Action: func(Firing) error { return nil }}
	if err := m.Add(tr); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(tr); !errors.Is(err, ErrDuplicate) {
		t.Errorf("dup: %v", err)
	}
	if got := m.List(); len(got) != 1 || got[0] != "x" {
		t.Errorf("List = %v", got)
	}
	if err := m.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("x"); !errors.Is(err, ErrNoSuchTrig) {
		t.Errorf("remove missing: %v", err)
	}
	bad := Trigger{Name: "y", Query: "not a query", Action: func(Firing) error { return nil }}
	if err := m.Add(bad); err == nil {
		t.Error("bad query accepted")
	}
	if err := m.Add(Trigger{Name: "", Query: "select x.y", Action: func(Firing) error { return nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := m.Add(Trigger{Name: "z", Query: "select x.y"}); err == nil {
		t.Error("nil action accepted")
	}
}
