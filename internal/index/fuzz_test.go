package index

import (
	"testing"
	"time"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/timestamp"
)

// FuzzIndexSnapshotParity drives randomized histories and instants through
// the indexed accessors and asserts they agree, element for element, with
// the linear-scan implementations in internal/doem — the same invariant
// the property test checks, explored adversarially.
func FuzzIndexSnapshotParity(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(5), int64(3600))
	f.Add(int64(7), uint8(3), uint8(2), int64(-60))
	f.Add(int64(42), uint8(30), uint8(7), int64(86400*3))
	f.Fuzz(func(t *testing.T, seed int64, steps, ops uint8, tOff int64) {
		nsteps := int(steps%24) + 1
		nops := int(ops%8) + 1
		initial, h := guidegen.GenerateHistory(seed, 6, nsteps, nops)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			t.Skip() // generator produced an unusable history for this input
		}
		ig := NewGraph(d)

		// An instant anywhere around the history range, including exact
		// step timestamps when tOff lands on a day boundary.
		span := int64(nsteps+2) * 86400
		off := tOff % span
		at := timestamp.MustParse("1Jan97").Add(time.Duration(off) * time.Second)

		for _, n := range d.AllNodeIDs() {
			if want, got := d.ValueAt(n, at), ig.ValueAt(n, at); !want.Equal(got) {
				t.Fatalf("ValueAt(%s, %s): indexed %s, unindexed %s", n, at, got, want)
			}
			var wantArcs []string
			for _, a := range d.OutAll(n) {
				if want, got := d.ArcLiveAt(a, at), ig.ArcLiveAt(a, at); want != got {
					t.Fatalf("ArcLiveAt(%s, %s): indexed %v, unindexed %v", a, at, got, want)
				}
				if d.ArcLiveAt(a, at) {
					wantArcs = append(wantArcs, a.String())
				}
			}
			gotArcs := ig.OutAt(n, at)
			if len(gotArcs) != len(wantArcs) {
				t.Fatalf("OutAt(%s, %s): indexed %d arcs, unindexed %d", n, at, len(gotArcs), len(wantArcs))
			}
			for i, a := range gotArcs {
				if a.String() != wantArcs[i] {
					t.Fatalf("OutAt(%s, %s)[%d]: indexed %s, unindexed %s", n, at, i, a, wantArcs[i])
				}
			}
		}
		if !d.SnapshotAt(at).Equal(ig.SnapshotAt(at)) {
			t.Fatalf("SnapshotAt(%s): memoized snapshot differs from direct materialization", at)
		}
	})
}
