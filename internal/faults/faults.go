// Package faults provides deterministic fault injection for robustness
// tests and chaos-style soak runs: a flaky wrapper.Source that fails,
// delays or hangs chosen polls, a flaky net.Conn that tears writes and
// stalls or drops mid-message, and a flaky net.Listener that injects
// temporary Accept errors.
//
// All injection is driven by operation count (1-based) through a plan
// function, so a scripted plan is exactly reproducible and a seeded
// Random plan produces the same fault sequence for the same seed.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/oem"
	"repro/internal/wrapper"
)

// ErrInjected is the error returned by injected source failures (wrapped
// with position detail).
var ErrInjected = errors.New("faults: injected failure")

// SourceFault describes what to inject into one Poll call. The zero value
// injects nothing.
type SourceFault struct {
	// Err, when non-nil, is returned instead of polling the inner source.
	Err error
	// Latency delays the poll before it proceeds (or fails).
	Latency time.Duration
	// Hang blocks the poll until Source.Release is called. Combine with a
	// test timeout; a hung poll holds the subscription's poll slot.
	Hang bool
}

// Source wraps a wrapper.Source with per-poll fault injection.
type Source struct {
	inner wrapper.Source
	plan  func(poll int) SourceFault

	mu      sync.Mutex
	polls   int
	release chan struct{}
}

// NewSource wraps inner. plan receives the 1-based poll count and decides
// the injection; a nil plan injects nothing. The plan is called under the
// source lock, so stateful plans need no extra synchronization.
func NewSource(inner wrapper.Source, plan func(poll int) SourceFault) *Source {
	return &Source{inner: inner, plan: plan, release: make(chan struct{})}
}

// Poll implements wrapper.Source.
func (s *Source) Poll() (*oem.Database, error) {
	s.mu.Lock()
	s.polls++
	var f SourceFault
	if s.plan != nil {
		f = s.plan(s.polls)
	}
	release := s.release
	s.mu.Unlock()

	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Hang {
		<-release
	}
	if f.Err != nil {
		return nil, f.Err
	}
	return s.inner.Poll()
}

// StableIDs implements wrapper.Source.
func (s *Source) StableIDs() bool { return s.inner.StableIDs() }

// Polls returns how many times Poll has been called.
func (s *Source) Polls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.polls
}

// Release unblocks every current and future hung poll.
func (s *Source) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.release:
		// Already released.
	default:
		close(s.release)
	}
}

// Script builds a plan from an explicit poll-number-to-fault table.
func Script(table map[int]SourceFault) func(int) SourceFault {
	return func(poll int) SourceFault { return table[poll] }
}

// FailPolls fails exactly the listed 1-based polls with err.
func FailPolls(err error, polls ...int) func(int) SourceFault {
	set := make(map[int]bool, len(polls))
	for _, p := range polls {
		set[p] = true
	}
	return func(poll int) SourceFault {
		if set[poll] {
			return SourceFault{Err: err}
		}
		return SourceFault{}
	}
}

// FailRange fails every poll in [from, to] (inclusive, 1-based) with err.
func FailRange(err error, from, to int) func(int) SourceFault {
	return func(poll int) SourceFault {
		if poll >= from && poll <= to {
			return SourceFault{Err: err}
		}
		return SourceFault{}
	}
}

// Random builds a seeded plan injecting errors with probability errRate
// and uniform latency in [0, maxLatency). The same seed yields the same
// fault sequence, call for call.
func Random(seed int64, errRate float64, maxLatency time.Duration) func(int) SourceFault {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(int) SourceFault {
		mu.Lock()
		defer mu.Unlock()
		var f SourceFault
		if errRate > 0 && rng.Float64() < errRate {
			f.Err = ErrInjected
		}
		if maxLatency > 0 {
			f.Latency = time.Duration(rng.Int63n(int64(maxLatency)))
		}
		return f
	}
}

// ConnFault describes what to inject into one Read or Write call. The
// zero value injects nothing.
type ConnFault struct {
	// Stall delays the operation before it proceeds.
	Stall time.Duration
	// Torn, on a write, transmits only the first Torn bytes and then
	// fails — a torn mid-message write.
	Torn int
	// Drop closes the connection before the operation completes.
	Drop bool
	// Err fails the operation (after any torn bytes were transmitted).
	Err error
}

// ConnScript builds a per-operation plan from an explicit
// operation-number-to-fault table.
func ConnScript(table map[int]ConnFault) func(int) ConnFault {
	return func(op int) ConnFault { return table[op] }
}

// Conn wraps a net.Conn with per-operation fault injection. Reads and
// writes are counted separately, each 1-based.
type Conn struct {
	net.Conn

	mu            sync.Mutex
	reads, writes int
	onRead        func(op int) ConnFault
	onWrite       func(op int) ConnFault
}

// NewConn wraps inner. onRead/onWrite receive the operation count and
// decide the injection; nil plans inject nothing.
func NewConn(inner net.Conn, onRead, onWrite func(op int) ConnFault) *Conn {
	return &Conn{Conn: inner, onRead: onRead, onWrite: onWrite}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	var f ConnFault
	if c.onRead != nil {
		f = c.onRead(c.reads)
	}
	c.mu.Unlock()
	if f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f.Drop {
		c.Conn.Close()
		return 0, errors.New("faults: connection dropped")
	}
	if f.Err != nil {
		return 0, f.Err
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	var f ConnFault
	if c.onWrite != nil {
		f = c.onWrite(c.writes)
	}
	c.mu.Unlock()
	if f.Stall > 0 {
		time.Sleep(f.Stall)
	}
	if f.Torn > 0 && f.Torn < len(p) {
		n, err := c.Conn.Write(p[:f.Torn])
		if f.Drop {
			c.Conn.Close()
		}
		if err == nil {
			err = errors.New("faults: torn write")
		}
		return n, err
	}
	if f.Drop {
		c.Conn.Close()
		return 0, errors.New("faults: connection dropped")
	}
	if f.Err != nil {
		return 0, f.Err
	}
	return c.Conn.Write(p)
}

// Kill severs the underlying connection (both directions), simulating an
// abrupt network failure.
func (c *Conn) Kill() error { return c.Conn.Close() }

// Listener wraps a net.Listener, injecting errors into Accept by attempt
// count (1-based). A nil error from the plan accepts normally.
type Listener struct {
	net.Listener

	mu       sync.Mutex
	attempts int
	plan     func(attempt int) error
}

// NewListener wraps inner with the given Accept plan.
func NewListener(inner net.Listener, plan func(attempt int) error) *Listener {
	return &Listener{Listener: inner, plan: plan}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.attempts++
	n := l.attempts
	l.mu.Unlock()
	if l.plan != nil {
		if err := l.plan(n); err != nil {
			return nil, err
		}
	}
	return l.Listener.Accept()
}

// Attempts returns how many times Accept has been called.
func (l *Listener) Attempts() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.attempts
}

// TemporaryError returns a net.Error whose Temporary method reports true —
// the shape of transient Accept failures (EMFILE, ECONNABORTED).
func TemporaryError(msg string) net.Error { return &tempError{msg} }

type tempError struct{ s string }

func (e *tempError) Error() string   { return e.s }
func (e *tempError) Timeout() bool   { return false }
func (e *tempError) Temporary() bool { return true }
