// Package wrapper provides the source abstraction the Query Subscription
// Service polls — the stand-in for Tsimmis wrappers and mediators
// (paper Section 6): each source, when polled, produces an OEM snapshot of
// an autonomous information system that offers no triggers and no history.
package wrapper

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/oem"
	"repro/internal/value"
)

// Source is a pollable information source presenting an OEM view.
type Source interface {
	// Poll returns the source's current snapshot. Callers must not modify
	// the returned database; successive polls may return the same object.
	Poll() (*oem.Database, error)
	// StableIDs reports whether node ids persist across polls (a wrapper
	// over a system with object identity). QSS uses the identity differ
	// when true and the matching differ otherwise.
	StableIDs() bool
}

// Static is a source whose snapshot never changes.
type Static struct{ DB *oem.Database }

// Poll implements Source.
func (s Static) Poll() (*oem.Database, error) { return s.DB, nil }

// StableIDs implements Source.
func (s Static) StableIDs() bool { return true }

// Mutable is a source backed by a live OEM database mutated between polls,
// with stable object identity — the shape of a cooperative wrapper.
type Mutable struct {
	mu sync.Mutex
	db *oem.Database
}

// NewMutable wraps db as a mutable source.
func NewMutable(db *oem.Database) *Mutable { return &Mutable{db: db} }

// Poll implements Source: it returns a snapshot clone, so later mutations
// do not alias earlier polls.
func (m *Mutable) Poll() (*oem.Database, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.db.Clone(), nil
}

// StableIDs implements Source.
func (m *Mutable) StableIDs() bool { return true }

// Mutate runs fn against the underlying database under the source lock.
func (m *Mutable) Mutate(fn func(db *oem.Database) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fn(m.db)
}

// Func adapts a function to a Source.
type Func struct {
	PollFunc func() (*oem.Database, error)
	Stable   bool
}

// Poll implements Source.
func (f Func) Poll() (*oem.Database, error) { return f.PollFunc() }

// StableIDs implements Source.
func (f Func) StableIDs() bool { return f.Stable }

// Unstable wraps a source and re-copies every snapshot with fresh node ids,
// simulating sources without object identity (a re-fetched web page).
type Unstable struct{ Inner Source }

// Poll implements Source.
func (u Unstable) Poll() (*oem.Database, error) {
	db, err := u.Inner.Poll()
	if err != nil {
		return nil, err
	}
	// Copy with a throwaway remap so every poll assigns new ids.
	out := oem.New()
	remap := make(map[oem.NodeID]oem.NodeID)
	var copyNode func(n oem.NodeID) oem.NodeID
	copyNode = func(n oem.NodeID) oem.NodeID {
		if id, ok := remap[n]; ok {
			return id
		}
		id := out.CreateNode(db.MustValue(n))
		remap[n] = id
		for _, a := range db.Out(n) {
			c := copyNode(a.Child)
			if err := out.AddArc(id, a.Label, c); err != nil {
				panic(err)
			}
		}
		return id
	}
	for _, a := range db.Out(db.Root()) {
		c := copyNode(a.Child)
		if err := out.AddArc(out.Root(), a.Label, c); err != nil {
			panic(err)
		}
	}
	return out, nil
}

// StableIDs implements Source.
func (u Unstable) StableIDs() bool { return false }

// CSV is a source over tabular data — the shape of a wrapper over a
// relational or mainframe system (the paper's library example). Each row
// becomes a complex object under the root, labeled with Row; columns become
// atomic children labeled by header. Rows are identified by the key column,
// so ids are stable across polls as long as keys persist.
type CSV struct {
	Row string // arc label for each row object, e.g. "book"
	Key string // header name of the identifying column

	mu      sync.Mutex
	fetch   func() (string, error)
	ids     map[string]oem.NodeID // key value -> row object id
	cellIDs map[string]oem.NodeID // key+column -> cell atom id
	next    oem.NodeID            // persistent id allocator
}

// NewCSV builds a CSV source; fetch returns the current CSV text (with a
// header row) on each poll.
func NewCSV(row, key string, fetch func() (string, error)) *CSV {
	return &CSV{
		Row: row, Key: key, fetch: fetch,
		ids:     make(map[string]oem.NodeID),
		cellIDs: make(map[string]oem.NodeID),
		next:    1, // the root id; alloc pre-increments past it
	}
}

func (c *CSV) alloc() oem.NodeID {
	c.next++
	return c.next
}

// Poll implements Source: it parses the current CSV text into an OEM
// snapshot, keeping row object ids stable by key.
func (c *CSV) Poll() (*oem.Database, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	text, err := c.fetch()
	if err != nil {
		return nil, err
	}
	r := csv.NewReader(strings.NewReader(text))
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("wrapper: csv header: %w", err)
	}
	keyIdx := -1
	for i, h := range header {
		if h == c.Key {
			keyIdx = i
		}
	}
	if keyIdx < 0 {
		return nil, fmt.Errorf("wrapper: csv key column %q not found", c.Key)
	}
	db := oem.New()
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("wrapper: csv: %w", err)
		}
		key := rec[keyIdx]
		rowID, ok := c.ids[key]
		if !ok {
			rowID = c.alloc()
			c.ids[key] = rowID
		}
		if !db.Has(rowID) {
			if err := db.CreateNodeWithID(rowID, value.Complex()); err != nil {
				return nil, fmt.Errorf("wrapper: csv row %q: %w", key, err)
			}
		}
		if err := db.AddArc(db.Root(), c.Row, rowID); err != nil {
			return nil, fmt.Errorf("wrapper: csv row %q: %w", key, err)
		}
		for i, col := range rec {
			if i >= len(header) {
				break
			}
			cellKey := key + "\x00" + header[i]
			cellID, ok := c.cellIDs[cellKey]
			if !ok {
				cellID = c.alloc()
				c.cellIDs[cellKey] = cellID
			}
			if err := db.CreateNodeWithID(cellID, parseCell(col)); err != nil {
				return nil, fmt.Errorf("wrapper: csv cell: %w", err)
			}
			if err := db.AddArc(rowID, header[i], cellID); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// StableIDs implements Source: row objects are keyed by the key column and
// cell atoms by (key, column), so value changes surface as updNode
// operations.
func (c *CSV) StableIDs() bool { return true }

// parseCell coerces a CSV cell: integer, real, boolean, else string.
func parseCell(s string) value.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return value.Real(f)
	}
	switch strings.ToLower(s) {
	case "true":
		return value.Bool(true)
	case "false":
		return value.Bool(false)
	}
	return value.Str(s)
}
