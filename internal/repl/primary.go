package repl

import (
	"bufio"
	"errors"
	"net"

	"repro/internal/wal"
)

// session is one connected follower on the primary side.
type session struct {
	node *Node
	conn net.Conn
	id   string
	dead bool // protected by node.mu
}

// Serve accepts follower connections until ln fails (i.e. is closed),
// handling each on its own goroutine.
func (n *Node) Serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go n.HandleConn(c)
	}
}

// HandleConn runs one replication session over c: handshake, optional
// snapshot, then record streaming with ack collection. It returns when
// the session ends (connection failure, fencing, node close). Any node —
// including one currently a follower — can accept sessions; non-primaries
// reject the hello with their epoch, which tells a stale primary it has
// been deposed.
func (n *Node) HandleConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	hello, err := ReadFrame(br, n.cfg.MaxFrame)
	if err != nil || hello.Type != FrameHello {
		return
	}
	id, ok := parseHandshake(hello.Payload)
	if !ok || id == "" {
		return
	}
	n.adoptEpoch(hello.Epoch) // a higher-epoch peer deposes us

	n.mu.Lock()
	if n.role != RolePrimary || n.closed {
		ep := n.epoch
		n.mu.Unlock()
		mRejectsSent.Inc()
		WriteFrame(c, Frame{Type: FrameReject, Epoch: ep})
		return
	}

	// Decide where the stream starts. hello.Seq is the follower's last
	// oplog seq, hello.Commit the epoch of its record at that seq: if that
	// record does not byte-match ours the follower's tail diverged (it
	// heard unacknowledged records from a deposed primary) and must be
	// reset from a snapshot.
	start := hello.Seq
	needSnap := false
	_, base, _ := n.log.LastCheckpoint()
	switch {
	case start > n.applied:
		needSnap = true // follower ahead of us: divergent tail
	case start < base:
		needSnap = true // compacted away
	case start == 0:
		// Empty follower, empty checkpoint: full stream from seq 1.
	case start == n.applied && hello.Commit == n.lastRecordEpoch:
		// Fast path: the follower's tip record has the same (epoch, seq)
		// as ours, and only one primary ever writes a given seq within an
		// epoch, so the bytes match. This also verifies the checkpoint
		// boundary (start == base) when the record itself was compacted.
	default:
		recs, _, rerr := n.log.Records(start, 1)
		if rerr != nil || len(recs) == 0 || recs[0].Seq != start {
			// Unreadable — including a checkpoint-boundary record whose
			// bytes were compacted away: reset conservatively rather than
			// accept an unverifiable tail.
			needSnap = true
		} else if repoch, _, _, derr := DecodeOplogRecord(recs[0].Payload); derr != nil || repoch != hello.Commit {
			needSnap = true
		}
	}
	var snap []byte
	if needSnap {
		snap, err = n.state.Snapshot()
		if err != nil {
			// Snapshot-incapable state and an incompatible follower:
			// nothing we can stream. Drop the session; the operator must
			// wipe the follower's data directory.
			n.mu.Unlock()
			mSnapshotFailures.Inc()
			return
		}
		start = n.applied
	}
	sess := &session{node: n, conn: c, id: id}
	n.sessions[sess] = struct{}{}
	epoch, commit, applied := n.epoch, n.commit, n.applied
	recEpoch := n.lastRecordEpoch
	n.mu.Unlock()

	defer func() {
		n.mu.Lock()
		delete(n.sessions, sess)
		n.mu.Unlock()
	}()

	welcome := Frame{
		Type: FrameWelcome, Epoch: epoch, Seq: applied, Commit: commit,
		Payload: handshakePayload(n.cfg.Advertise),
	}
	if err := WriteFrame(c, welcome); err != nil {
		return
	}
	if needSnap {
		mSnapshotsSent.Inc()
		f := Frame{Type: FrameSnapshot, Epoch: epoch, Seq: start, Commit: recEpoch, Payload: snap}
		if err := WriteFrame(c, f); err != nil {
			return
		}
	}

	// Ack reader: collects follower acks and fences us on higher epochs.
	go func() {
		for {
			f, err := ReadFrame(br, n.cfg.MaxFrame)
			if err != nil {
				n.mu.Lock()
				sess.dead = true
				n.cond.Broadcast()
				n.mu.Unlock()
				c.Close()
				return
			}
			if f.Epoch > epoch {
				n.adoptEpoch(f.Epoch)
			}
			switch f.Type {
			case FrameAck:
				n.recordAck(id, f.Seq)
			case FrameReject:
				mRejectsReceived.Inc()
				n.adoptEpoch(f.Epoch)
				c.Close()
				return
			}
		}
	}()

	n.stream(sess, c, start+1, commit)
}

// stream pushes records (and commit-watermark heartbeats) to one follower
// from seq next onward, waiting on the node condition for new appends.
// lastCommit is the watermark the follower already knows (from Welcome).
func (n *Node) stream(sess *session, c net.Conn, next, lastCommit uint64) {
	bw := bufio.NewWriter(c)
	n.mu.Lock()
	lastHb := n.hb
	n.mu.Unlock()
	for {
		n.mu.Lock()
		for {
			if n.closed || n.role != RolePrimary || sess.dead {
				n.mu.Unlock()
				return
			}
			if n.applied >= next || n.commit != lastCommit || n.hb != lastHb {
				break
			}
			n.cond.Wait()
		}
		lastHb = n.hb
		epoch, commit, applied := n.epoch, n.commit, n.applied
		n.mu.Unlock()

		if applied >= next {
			recs, _, err := n.log.Records(next, n.cfg.BatchBytes)
			if errors.Is(err, wal.ErrCompacted) {
				// A concurrent Compact outran this slow session; reset the
				// follower with a fresh snapshot.
				n.mu.Lock()
				snap, serr := n.state.Snapshot()
				upTo, recEpoch := n.applied, n.lastRecordEpoch
				epoch = n.epoch
				n.mu.Unlock()
				if serr != nil {
					mSnapshotFailures.Inc()
					return
				}
				mSnapshotsSent.Inc()
				f := Frame{Type: FrameSnapshot, Epoch: epoch, Seq: upTo, Commit: recEpoch, Payload: snap}
				if WriteFrame(bw, f) != nil || bw.Flush() != nil {
					return
				}
				next = upTo + 1
				continue
			}
			if err != nil {
				return
			}
			for _, r := range recs {
				f := Frame{Type: FrameRecord, Epoch: epoch, Seq: r.Seq, Commit: commit, Payload: r.Payload}
				if err := WriteFrame(bw, f); err != nil {
					return
				}
				next = r.Seq + 1
				mRecordsSent.Inc()
			}
			if err := bw.Flush(); err != nil {
				return
			}
			lastCommit = commit
			continue
		}
		// No new records: push the commit watermark.
		f := Frame{Type: FrameCommit, Epoch: epoch, Seq: applied, Commit: commit}
		if WriteFrame(bw, f) != nil || bw.Flush() != nil {
			return
		}
		lastCommit = commit
	}
}
