package lore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/lorel"
	"repro/internal/segment"
	"repro/internal/wal"
)

// TestSegmentedStoreRoundTrip drives a full history through a segmented
// store with an aggressive auto-seal policy, then checks queries against a
// monolithic database built from the same history, across a restart.
func TestSegmentedStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pol := &segment.Policy{SealAnnotations: 20}
	s, err := OpenSegmented(dir, &wal.Options{Sync: wal.SyncNever}, pol)
	if err != nil {
		t.Fatal(err)
	}
	initial, h := guidegen.GenerateHistory(3, 15, 12, 5)
	if err := s.PutDOEM("guide", doem.New(initial.Clone())); err != nil {
		t.Fatal(err)
	}
	for _, step := range h {
		if err := s.ApplySet("guide", step.At, step.Ops); err != nil {
			t.Fatal(err)
		}
	}
	want, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}

	st, ok := s.SegmentStore("guide")
	if !ok {
		t.Fatal("segmented store has no segment store for guide")
	}
	if st.Segments() == 0 {
		t.Fatal("auto-seal policy produced no sealed segments")
	}

	queries := []string{
		`select guide.restaurant.name`,
		`select T from guide.<add at T>restaurant`,
		`select T, OV, NV from guide.restaurant.price<upd at T from OV to NV>`,
	}
	check := func(s *Store) {
		t.Helper()
		raw := lorel.NewEngine()
		raw.Register("guide", want)
		for _, q := range queries {
			wantRes, err := raw.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			err = s.ViewIndexed("guide", func(g lorel.Graph) error {
				eng := lorel.NewEngine()
				eng.Register("guide", g)
				got, err := eng.Query(q)
				if err != nil {
					return err
				}
				if got.String() != wantRes.String() {
					t.Errorf("segmented result diverges for %q", q)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmented(dir, &wal.Options{Sync: wal.SyncNever}, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2)

	if id, err := s2.MaxID("guide"); err != nil || id != want.MaxID() {
		t.Errorf("MaxID = %v, %v; want %v", id, err, want.MaxID())
	}
}

// TestSegmentedStoreCheckpointSeals: in segmented mode Checkpoint is a
// seal — it must produce a new sealed segment and leave the database
// answering identically.
func TestSegmentedStoreCheckpointSeals(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSegmented(dir, &wal.Options{Sync: wal.SyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := walGuide(t, s, "guide")
	st, _ := s.SegmentStore("guide")
	if n := st.Segments(); n != 0 {
		t.Fatalf("segments before checkpoint = %d, want 0 (nil policy)", n)
	}
	if err := s.Checkpoint("guide"); err != nil {
		t.Fatal(err)
	}
	if n := st.Segments(); n != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", n)
	}
	segDir := filepath.Join(dir, "guide"+segExt)
	if _, err := os.Stat(filepath.Join(segDir, "seg-000001.seg")); err != nil {
		t.Fatalf("sealed segment file missing: %v", err)
	}
	got, err := s.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	// The post-seal active database alone only covers the current state;
	// full-history equality goes through the merged graph.
	if cur := got.Current(); !cur.Equal(want.Current()) {
		t.Error("current state diverged across a seal")
	}
	err = s.ViewIndexed("guide", func(g lorel.Graph) error {
		eng := lorel.NewEngine()
		eng.Register("guide", g)
		raw := lorel.NewEngine()
		raw.Register("guide", want)
		q := `select T from guide.<add at T>restaurant`
		gotRes, err := eng.Query(q)
		if err != nil {
			return err
		}
		wantRes, err := raw.Query(q)
		if err != nil {
			return err
		}
		if gotRes.String() != wantRes.String() {
			t.Errorf("history query diverges after seal")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
