// Query Subscription Service walkthroughs:
//
//  1. The paper's Example 6.1 timeline — subscribe to new restaurants,
//     poll three nights in a row, and watch notifications appear exactly
//     when the paper says they should.
//
//  2. The paper's library motivating example (Section 1.1) — "notify me
//     when a popular book becomes available", where popularity (two or
//     more checkouts in the window) is expressed purely over the DOEM
//     history that QSS accumulates from circulation snapshots.
package main

import (
	"fmt"
	"log"

	"repro/internal/library"
	"repro/internal/oem"
	"repro/internal/qss"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wrapper"

	"repro/internal/guidegen"
)

func main() {
	restaurantTimeline()
	popularBooks()
}

// restaurantTimeline replays Example 6.1.
func restaurantTimeline() {
	fmt.Println("== Example 6.1: nightly 'new restaurants' subscription ==")
	db, ids := guidegen.PaperGuide()
	src := wrapper.NewMutable(db)
	svc := qss.NewService(nil)

	err := svc.Subscribe(qss.Subscription{
		Name:       "Restaurants",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter:     `select Restaurants.restaurant<cre at T> where T > t[-1]`,
	})
	if err != nil {
		log.Fatal(err)
	}

	poll := func(day string) {
		n, err := svc.Poll("Restaurants", timestamp.MustParse(day))
		if err != nil {
			log.Fatal(err)
		}
		if n == nil {
			fmt.Printf("%s: no notification\n", day)
			return
		}
		fmt.Printf("%s: notified of %d restaurant(s)\n", day, n.Result.Len())
		for _, a := range n.Answer.OutLabeled(n.Answer.Root(), "restaurant") {
			for _, na := range n.Answer.OutLabeled(a.Child, "name") {
				fmt.Printf("  - %s\n", n.Answer.MustValue(na.Child).Display())
			}
		}
	}

	poll("30Dec96") // initial snapshot: both restaurants are "new"
	poll("31Dec96") // nothing changed: silence
	// On 1Jan97 the Hakata restaurant appears in the source.
	err = src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	})
	if err != nil {
		log.Fatal(err)
	}
	poll("1Jan97") // exactly Hakata is reported
}

// popularBooks drives the library example end to end.
func popularBooks() {
	fmt.Println("\n== Library: popular books becoming available ==")
	sim := library.New(7, 6)
	src := wrapper.NewMutable(sim.DB())
	svc := qss.NewService(nil)

	err := svc.Subscribe(qss.Subscription{
		Name:       "Books",
		SourceName: "library",
		Source:     src,
		Polling:    `select library.book`,
		// Popular and available: two distinct checkout-counter updates in
		// the history, and currently on the shelf.
		Filter: `select T from Books.book B, B.title T
			where B.status = "in"
			  and B.checkouts<upd at T1> >= 0
			  and B.checkouts<upd at T2> >= 0 and T2 > T1`,
	})
	if err != nil {
		log.Fatal(err)
	}

	day := timestamp.MustParse("1Jan97")
	poll := func(what string) {
		n, err := svc.Poll("Books", day)
		if err != nil {
			log.Fatal(err)
		}
		day = day.Add(86400e9)
		if n == nil {
			fmt.Printf("%-34s -> no notification\n", what)
			return
		}
		titles := n.Result.Values("title")
		fmt.Printf("%-34s -> popular & available: %d\n", what, len(titles))
		for _, t := range titles {
			fmt.Printf("  - %s\n", t.Display())
		}
	}

	mutate := func(fn func()) {
		if err := src.Mutate(func(*oem.Database) error { fn(); return nil }); err != nil {
			log.Fatal(err)
		}
	}

	poll("initial snapshot")
	mutate(func() { sim.Checkout(0) })
	poll("book 0 checked out once")
	mutate(func() { sim.Return(0) })
	poll("book 0 returned")
	mutate(func() { sim.Checkout(0) })
	poll("book 0 checked out again")
	mutate(func() { sim.Return(0) })
	poll("book 0 returned again") // now popular AND available
}
