package value

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/timestamp"
)

func TestKindsAndAccessors(t *testing.T) {
	if !Complex().IsComplex() || Complex().IsAtomic() {
		t.Error("Complex misclassified")
	}
	if Int(7).AsInt() != 7 || Int(7).Kind() != KindInt {
		t.Error("Int accessor wrong")
	}
	if Real(2.5).AsReal() != 2.5 {
		t.Error("Real accessor wrong")
	}
	if Str("x").AsString() != "x" {
		t.Error("Str accessor wrong")
	}
	if Bool(true).AsBool() != true {
		t.Error("Bool accessor wrong")
	}
	ts := timestamp.MustParse("1Jan97")
	if !Time(ts).AsTime().Equal(ts) {
		t.Error("Time accessor wrong")
	}
	var zero Value
	if !zero.IsComplex() {
		t.Error("zero Value should be complex C")
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Complex(), "C"},
		{Null(), "null"},
		{Int(10), "10"},
		{Real(20.5), "20.5"},
		{Str("moderate"), `"moderate"`},
		{Bool(false), "false"},
		{Time(timestamp.MustParse("1Jan97")), "1Jan97"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.v.Kind(), got, tt.want)
		}
	}
	if Str("moderate").Display() != "moderate" {
		t.Error("Display should not quote strings")
	}
}

// TestPaperExample41Coercions checks the exact comparisons in paper
// Example 4.1: price < 20.5 with an int price (coerces, true), a string
// price "moderate" (coercion fails, false), and a missing price (handled
// at the query layer).
func TestPaperExample41Coercions(t *testing.T) {
	// 10 < 20.5 coerces int->real and succeeds.
	cmp, ok := Compare(Int(10), Real(20.5))
	if !ok || cmp != -1 {
		t.Errorf("Compare(10, 20.5) = %d,%v; want -1,true", cmp, ok)
	}
	// "moderate" vs 20.5: coercion fails, comparison is not ok.
	if _, ok := Compare(Str("moderate"), Real(20.5)); ok {
		t.Error(`Compare("moderate", 20.5) should fail to coerce`)
	}
	// A numeric string does coerce.
	cmp, ok = Compare(Str("30"), Real(20.5))
	if !ok || cmp != 1 {
		t.Errorf(`Compare("30", 20.5) = %d,%v; want 1,true`, cmp, ok)
	}
}

func TestCompareSameKind(t *testing.T) {
	tests := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Real(3.5), Real(1.5), 1, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Time(timestamp.MustParse("1Jan97")), Time(timestamp.MustParse("5Jan97")), -1, true},
	}
	for _, tt := range tests {
		cmp, ok := Compare(tt.a, tt.b)
		if cmp != tt.cmp || ok != tt.ok {
			t.Errorf("Compare(%s, %s) = %d,%v; want %d,%v", tt.a, tt.b, cmp, ok, tt.cmp, tt.ok)
		}
	}
}

func TestCompareTimeCoercion(t *testing.T) {
	// A string in any recognized format coerces to time (paper Section 4.2:
	// "any recognizable format is allowed and is converted automatically").
	cmp, ok := Compare(Str("4Jan97"), Time(timestamp.MustParse("5Jan97")))
	if !ok || cmp != -1 {
		t.Errorf(`Compare("4Jan97", 5Jan97) = %d,%v; want -1,true`, cmp, ok)
	}
	cmp, ok = Compare(Time(timestamp.MustParse("8Jan97")), Str("1997-01-05"))
	if !ok || cmp != 1 {
		t.Errorf("time vs ISO string = %d,%v; want 1,true", cmp, ok)
	}
	if _, ok := Compare(Time(timestamp.MustParse("1Jan97")), Str("nonsense")); ok {
		t.Error("garbage string should not coerce to time")
	}
}

func TestCompareIncomparable(t *testing.T) {
	cases := [][2]Value{
		{Complex(), Int(1)},
		{Int(1), Complex()},
		{Null(), Int(1)},
		{Str("abc"), Int(1)},
		{Complex(), Complex()},
	}
	for _, c := range cases {
		if _, ok := Compare(c[0], c[1]); ok {
			t.Errorf("Compare(%s, %s) should be incomparable", c[0], c[1])
		}
	}
}

func TestEqualExact(t *testing.T) {
	if Int(1).Equal(Real(1)) {
		t.Error("exact Equal must be kind-sensitive")
	}
	if !Int(1).Equal(Int(1)) || !Str("x").Equal(Str("x")) {
		t.Error("Equal false negative")
	}
	if !Complex().Equal(Complex()) || !Null().Equal(Null()) {
		t.Error("C/null equality")
	}
}

func TestLike(t *testing.T) {
	tests := []struct {
		s, pat string
		want   bool
	}{
		{"120 Lytton", "%Lytton%", true},
		{"440 University Ave", "%Lytton%", false},
		{"Lytton", "Lytton", true},
		{"Lytton lot 2", "Lytton%", true},
		{"abc", "a_c", true},
		{"abbc", "a_c", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"anything", "%%", true},
		{"Thai Garden", "%Thai%", true},
	}
	for _, tt := range tests {
		if got := Str(tt.s).Like(tt.pat); got != tt.want {
			t.Errorf("Like(%q, %q) = %v, want %v", tt.s, tt.pat, got, tt.want)
		}
	}
	// Non-strings coerce to their display text.
	if !Int(120).Like("1%") {
		t.Error("int should match like pattern via display string")
	}
	if Complex().Like("%") {
		t.Error("complex value should never match like")
	}
}

func TestArith(t *testing.T) {
	if v, ok := Arith("+", Int(2), Int(3)); !ok || !v.Equal(Int(5)) {
		t.Errorf("2+3 = %s,%v", v, ok)
	}
	if v, ok := Arith("/", Int(7), Int(2)); !ok || !v.Equal(Real(3.5)) {
		t.Errorf("7/2 = %s,%v; want 3.5", v, ok)
	}
	if v, ok := Arith("/", Int(6), Int(2)); !ok || !v.Equal(Int(3)) {
		t.Errorf("6/2 = %s,%v; want int 3", v, ok)
	}
	if _, ok := Arith("/", Int(1), Int(0)); ok {
		t.Error("division by zero should fail")
	}
	if v, ok := Arith("+", Str("a"), Str("b")); !ok || !v.Equal(Str("ab")) {
		t.Error("string concat failed")
	}
	if v, ok := Arith("*", Str("4"), Real(2.5)); !ok || !v.Equal(Real(10)) {
		t.Errorf(`"4"*2.5 = %s,%v; want 10`, v, ok)
	}
	if _, ok := Arith("+", Complex(), Int(1)); ok {
		t.Error("arith on complex should fail")
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{Bool(true), Int(1), Real(0.5), Str("x")} {
		if !v.Truthy() {
			t.Errorf("%s should be truthy", v)
		}
	}
	for _, v := range []Value{Bool(false), Int(0), Real(0), Str(""), Null(), Complex()} {
		if v.Truthy() {
			t.Errorf("%s should be falsy", v)
		}
	}
}

// Property: Compare is symmetric-consistent (Compare(a,b) = -Compare(b,a)
// whenever comparable, and comparability itself is symmetric).
func TestCompareSymmetry(t *testing.T) {
	gen := func(sel uint8, i int64, r float64, s string) Value {
		switch sel % 6 {
		case 0:
			return Int(i % 1000)
		case 1:
			return Real(r)
		case 2:
			return Str(s)
		case 3:
			return Bool(i%2 == 0)
		case 4:
			return Null()
		default:
			return Time(timestamp.FromUnix(i % 1e9))
		}
	}
	prop := func(sel1 uint8, i1 int64, r1 float64, s1 string, sel2 uint8, i2 int64, r2 float64, s2 string) bool {
		a := gen(sel1, i1, r1, s1)
		b := gen(sel2, i2, r2, s2)
		c1, ok1 := Compare(a, b)
		c2, ok2 := Compare(b, a)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return c1 == -c2
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: likeMatch with a pattern that is the string itself always matches,
// unless the string contains pattern metacharacters.
func TestLikeSelfMatch(t *testing.T) {
	prop := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return Str(s).Like(s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: "%" matches everything; "" matches only "".
func TestLikeUniversal(t *testing.T) {
	prop := func(s string) bool {
		return Str(s).Like("%") && (Str(s).Like("") == (s == ""))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
