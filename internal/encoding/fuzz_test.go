package encoding

import (
	"strings"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
)

// FuzzLabelRoundTrip: HistoryLabel and DataLabel are mutual inverses for
// every data label, and DataLabel rejects anything that is not a history
// label.
func FuzzLabelRoundTrip(f *testing.F) {
	for _, s := range []string{"price", "name", "comment", "", "&val", "a-history", "&x-history", "restaurant"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, label string) {
		hist := HistoryLabel(label)
		back, ok := DataLabel(hist)
		if !ok {
			t.Fatalf("DataLabel rejects HistoryLabel(%q) = %q", label, hist)
		}
		if back != label {
			t.Fatalf("round trip %q -> %q -> %q", label, hist, back)
		}
		// Anything DataLabel accepts must carry the history shape.
		if got, ok := DataLabel(label); ok {
			if !strings.HasPrefix(label, Prefix) || !strings.HasSuffix(label, "-history") {
				t.Fatalf("DataLabel(%q) = %q accepted a non-history label", label, got)
			}
		}
	})
}

// FuzzEncodeDecode: for arbitrary generated histories, the Section 5.1
// encoding decodes back to a database whose re-encoding is isomorphic and
// whose current snapshot matches.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(4), uint8(4))
	f.Add(int64(42), uint8(1), uint8(1), uint8(1))
	f.Add(int64(7), uint8(25), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, restaurants, steps, ops uint8) {
		n := int(restaurants%25) + 1
		st := int(steps%8) + 1
		op := int(ops%6) + 1
		initial, h := guidegen.GenerateHistory(seed, n, st, op)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			t.Fatalf("seed %d n=%d steps=%d ops=%d: %v", seed, n, st, op, err)
		}
		enc := Encode(d)
		if err := enc.DB.Validate(); err != nil {
			t.Fatalf("encoding invalid: %v", err)
		}
		back, err := Decode(enc.DB)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !oem.Isomorphic(Encode(back).DB, enc.DB) {
			t.Error("re-encoding not isomorphic")
		}
		if !oem.Isomorphic(back.Current(), d.Current()) {
			t.Error("decoded current snapshot differs")
		}
	})
}
