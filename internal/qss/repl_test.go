package qss

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/repl"
	"repro/internal/timestamp"
	"repro/internal/value"
	"repro/internal/wrapper"
)

// replTestSub subscribes the paper's standing query over the guide source.
func replTestSub(src wrapper.Source) Subscription {
	return Subscription{
		Name:       "Restaurants",
		SourceName: "guide",
		Source:     src,
		Polling:    `select guide.restaurant`,
		Filter:     `select Restaurants.restaurant<cre at T> where T > t[-1]`,
	}
}

// openReplService builds a Service whose polls replicate through a
// repl.Node rooted at dir.
func openReplService(t *testing.T, dir string, cfg repl.Config, notify func(Notification)) (*Service, *repl.Node) {
	t.Helper()
	svc := NewService(notify)
	node, err := repl.Open(dir, NewReplState(svc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.EnableReplication(node); err != nil {
		node.Close()
		t.Fatal(err)
	}
	return svc, node
}

func qssWaitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestReplicatedServiceLifecycle drives a replicated service through the
// full local lifecycle: write gating by role (with packaging rollback),
// polls on a promoted node, the truncate/import guards, unsubscribe
// demoting to a replica, re-adoption, and a deterministic restart —
// including a compaction, so the ReplState snapshot/restore path runs.
func TestReplicatedServiceLifecycle(t *testing.T) {
	dir := t.TempDir()
	src, ids := paperSource(t)
	var delivered []Notification
	svc, node := openReplService(t, dir, repl.Config{ID: "a"}, func(n Notification) {
		delivered = append(delivered, n)
	})
	defer node.Close()

	if err := svc.Subscribe(replTestSub(src)); err != nil {
		t.Fatal(err)
	}

	// Not yet promoted: the poll is refused by the node and must leave no
	// trace — in particular the stable-id remap and id high-water mark the
	// packaging step allocated must be rolled back.
	t1 := timestamp.MustParse("30Dec96")
	if _, err := svc.Poll("Restaurants", t1); !errors.Is(err, repl.ErrNotPrimary) {
		t.Fatalf("poll before promote: %v", err)
	}
	if _, times, err := svc.History("Restaurants"); err != nil || len(times) != 0 {
		t.Fatalf("refused poll left history: times=%d err=%v", len(times), err)
	}

	// Promoted: the same poll must now succeed identically.
	if err := node.Promote(); err != nil {
		t.Fatal(err)
	}
	n1, err := svc.Poll("Restaurants", t1)
	if err != nil {
		t.Fatal(err)
	}
	if n1 == nil || n1.Result.Len() != 2 {
		t.Fatalf("t1 notification: %+v", n1)
	}

	// Guards: state under replication is exactly what the oplog replays.
	if err := svc.Truncate("Restaurants", t1); err == nil {
		t.Fatal("truncate allowed under replication")
	}
	if err := svc.ImportState("Restaurants", []byte("{}")); err == nil {
		t.Fatal("import allowed under replication")
	}

	// Mutate the source and poll again.
	err = src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	})
	if err != nil {
		t.Fatal(err)
	}
	t2 := timestamp.MustParse("1Jan97")
	n2, err := svc.Poll("Restaurants", t2)
	if err != nil {
		t.Fatal(err)
	}
	if n2 == nil || n2.Result.Len() != 1 {
		t.Fatalf("t2 notification: %+v", n2)
	}
	if len(delivered) != 2 {
		t.Fatalf("delivered %d notifications, want 2", len(delivered))
	}

	// Compact: the ReplState snapshot becomes the oplog checkpoint.
	if err := node.Compact(); err != nil {
		t.Fatal(err)
	}

	// Unsubscribe demotes to an unclaimed replica: history stays
	// readable, polling is refused, re-subscribing adopts it back.
	if err := svc.Unsubscribe("Restaurants"); err != nil {
		t.Fatal(err)
	}
	if got := svc.List(); len(got) != 1 || got[0] != "Restaurants" {
		t.Fatalf("replica not listed: %v", got)
	}
	if _, err := svc.Poll("Restaurants", timestamp.MustParse("2Jan97")); !errors.Is(err, ErrNoSuchSub) {
		t.Fatalf("poll of replica: %v", err)
	}
	if err := svc.Subscribe(replTestSub(src)); err != nil {
		t.Fatal(err)
	}
	t3 := timestamp.MustParse("2Jan97")
	if _, err := svc.Poll("Restaurants", t3); err != nil {
		t.Fatal(err)
	}
	d1, times1, err := svc.History("Restaurants")
	if err != nil {
		t.Fatal(err)
	}
	if len(times1) != 3 {
		t.Fatalf("poll times = %d, want 3", len(times1))
	}

	// Restart: a fresh service rebuilt from the oplog (checkpoint +
	// records after it) must agree exactly, and the subscription must be
	// adoptable with its t[-i] alignment intact.
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	svc2, node2 := openReplService(t, dir, repl.Config{ID: "a"}, nil)
	defer node2.Close()
	d2, times2, err := svc2.History("Restaurants")
	if err != nil {
		t.Fatal(err)
	}
	if len(times2) != len(times1) {
		t.Fatalf("restart poll times = %d, want %d", len(times2), len(times1))
	}
	for i := range times1 {
		if !times2[i].Equal(times1[i]) {
			t.Fatalf("restart poll time %d = %v, want %v", i, times2[i], times1[i])
		}
	}
	if !d2.Equal(d1) {
		t.Fatal("restarted history differs from original")
	}
	if err := svc2.Subscribe(replTestSub(src)); err != nil {
		t.Fatalf("adopting after restart: %v", err)
	}
	if err := node2.Promote(); err != nil {
		t.Fatal(err)
	}
	// A stale poll time is still refused — continuity survived.
	if _, err := svc2.Poll("Restaurants", t3); !errors.Is(err, ErrStalePoll) {
		t.Fatalf("stale poll after restart: %v", err)
	}
	if _, err := svc2.Poll("Restaurants", timestamp.MustParse("3Jan97")); err != nil {
		t.Fatal(err)
	}
}

// replCluster is one primary/replica pair of qss servers over real TCP,
// sharing one source (the same external world).
type replCluster struct {
	src  *wrapper.Mutable
	ids  *guidegen.PaperIDs
	srvP *Server
	srvF *Server
	pn   *repl.Node
	fn   *repl.Node
	// addrP/addrF are the client-facing addresses of primary and
	// follower; the replication stream listens on its own port.
	addrP, addrF string
}

func startReplCluster(t *testing.T, ack repl.AckMode) *replCluster {
	t.Helper()
	src, ids := paperSource(t)
	c := &replCluster{src: src, ids: ids}
	sources := map[string]wrapper.Source{"guide": src}

	lnP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnF, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.addrP, c.addrF = lnP.Addr().String(), lnF.Addr().String()

	c.srvP = NewServerWith(sources, RealClock{}, ServerConfig{})
	pn, err := repl.Open(t.TempDir(), NewReplState(c.srvP.Service()), repl.Config{
		ID:         "p",
		Ack:        ack,
		Replicas:   1,
		AckTimeout: 5 * time.Second,
		Advertise:  c.addrP,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.pn = pn
	t.Cleanup(func() { pn.Close() })
	if err := c.srvP.EnableReplication(pn); err != nil {
		t.Fatal(err)
	}
	if err := pn.Promote(); err != nil {
		t.Fatal(err)
	}
	go pn.Serve(replLn)
	t.Cleanup(func() { replLn.Close() })
	go c.srvP.Serve(lnP)
	t.Cleanup(c.srvP.Close)

	c.srvF = NewServerWith(sources, RealClock{}, ServerConfig{})
	fn, err := repl.Open(t.TempDir(), NewReplState(c.srvF.Service()), repl.Config{
		ID:            "f",
		Advertise:     c.addrF,
		RedialInitial: 10 * time.Millisecond,
		RedialMax:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.fn = fn
	t.Cleanup(func() { fn.Close() })
	if err := c.srvF.EnableReplication(fn); err != nil {
		t.Fatal(err)
	}
	replAddr := replLn.Addr().String()
	if err := fn.Follow(func() (net.Conn, error) { return net.Dial("tcp", replAddr) }); err != nil {
		t.Fatal(err)
	}
	go c.srvF.Serve(lnF)
	t.Cleanup(c.srvF.Close)
	return c
}

// TestReplicatedFailoverResume is the issue's acceptance scenario at the
// qss layer: a reconnecting client (qsc -reconnect with fallbacks) is
// subscribed against the primary, the follower replicates the history,
// the primary dies, the follower is promoted, and the client resumes
// against it exactly-once — no duplicate notifications, no lost history,
// poll-time continuity intact.
func TestReplicatedFailoverResume(t *testing.T) {
	c := startReplCluster(t, repl.AckOne)

	// The follower learns the primary's advertised client address from the
	// replication stream handshake; redirects carry it from then on.
	qssWaitFor(t, "follower to learn primary address", func() bool {
		return c.fn.Status().PrimaryAddr == c.addrP
	})

	// A client dialed straight at the replica is redirected to the
	// primary's advertised address, and sees the staleness bound.
	fc, err := Dial(c.addrF)
	if err != nil {
		t.Fatal(err)
	}
	err = fc.Subscribe("X", "guide", "guide", `select guide.restaurant`, `select X.restaurant`, "")
	var re *RedirectError
	if !errors.As(err, &re) || re.Addr != c.addrP {
		t.Fatalf("replica subscribe: %v (want redirect to %s)", err, c.addrP)
	}
	fst, err := fc.Status()
	if err != nil || fst == nil || fst.Role != "follower" {
		t.Fatalf("replica status: %+v, %v", fst, err)
	}
	fc.Close()

	// The robust client with both addresses lands on the primary
	// (redirect-following makes the order irrelevant).
	rc := DialRobustAddrs([]string{c.addrF, c.addrP}, &RobustOptions{
		ReconnectInitial: 10 * time.Millisecond,
		ReconnectMax:     100 * time.Millisecond,
	})
	defer rc.Close()
	sub := replTestSub(nil)
	// The first attempt may land on the follower and come back as a
	// redirect error; the client then redials at the primary, so a retry
	// converges. (qsc retries the same way: the redirect steers the dial.)
	qssWaitFor(t, "subscribe through redirects", func() bool {
		return rc.Subscribe(sub.Name, "guide", sub.SourceName, sub.Polling, sub.Filter, "") == nil
	})
	if err := rc.Poll(sub.Name, "30Dec96"); err != nil {
		t.Fatal(err)
	}
	n1 := <-rc.Notifications()
	if n1.Subscription != sub.Name || !n1.At.Equal(timestamp.MustParse("30Dec96")) {
		t.Fatalf("first notification: %+v", n1)
	}

	// The follower has the acknowledged history (AckOne: the poll was not
	// acknowledged until the follower had it durably).
	pApplied := c.pn.Status().Applied
	if pApplied == 0 {
		t.Fatal("primary applied nothing")
	}
	qssWaitFor(t, "follower catch-up", func() bool { return c.fn.Status().Applied == pApplied })
	if _, times, err := c.srvF.Service().History(sub.Name); err != nil || len(times) != 1 {
		t.Fatalf("replica history: times=%d err=%v", len(times), err)
	}

	// Failover: crash the primary, promote the follower. The client must
	// find the new primary through its fallback list on its own.
	c.pn.Close()
	c.srvP.Close()
	if err := c.fn.Promote(); err != nil {
		t.Fatal(err)
	}

	// New facts appear at the source after the failover.
	err = c.src.Mutate(func(db *oem.Database) error {
		r := db.CreateNode(value.Complex())
		nm := db.CreateNode(value.Str("Hakata"))
		if err := db.AddArc(c.ids.Guide, "restaurant", r); err != nil {
			return err
		}
		return db.AddArc(r, "name", nm)
	})
	if err != nil {
		t.Fatal(err)
	}

	// The poll succeeds once the client has reconnected and re-adopted the
	// subscription on the promoted node. Poll-time continuity proves the
	// replicated history was adopted, not recreated: 1Jan97 is only a
	// valid poll time if 30Dec96 survived the failover.
	qssWaitFor(t, "poll against promoted node", func() bool {
		return rc.Poll(sub.Name, "1Jan97") == nil
	})
	n2 := <-rc.Notifications()
	if !n2.At.Equal(timestamp.MustParse("1Jan97")) {
		t.Fatalf("post-failover notification at %v", n2.At)
	}
	if got := len(n2.Answer.OutLabeled(n2.Answer.Root(), "restaurant")); got != 1 {
		t.Fatalf("post-failover notification carries %d restaurants, want 1 (only the new one)", got)
	}

	// Exactly-once: no duplicate of the pre-failover notification arrives.
	select {
	case n, ok := <-rc.Notifications():
		if ok {
			t.Fatalf("duplicate notification: %+v", n)
		}
	case <-time.After(200 * time.Millisecond):
	}

	// A poll at or before the pre-failover time is still refused.
	err = rc.Poll(sub.Name, "30Dec96")
	if err == nil || !strings.Contains(err.Error(), "not after previous poll") {
		t.Fatalf("stale poll after failover: %v", err)
	}

	// The promoted server reports itself primary with zero lag.
	st, err := rc.Status()
	if err != nil || st == nil {
		t.Fatalf("status: %+v, %v", st, err)
	}
	if st.Role != "primary" || st.LagSeq != 0 || st.Applied != st.Commit {
		t.Fatalf("promoted status: %+v", st)
	}
}

// TestReplicatedFenceMidQuorumWaitNoRollback: a primary deposed while a
// poll waits for its ack quorum has already appended the poll record
// durably and folded it into subscription state. The poll must error
// without a notification, but the id state (stable-id remap, nextID
// high-water mark) must NOT be rolled back — it has to keep matching the
// oplog, or a later re-promotion would reuse object ids the log already
// carries and silently diverge from the followers.
func TestReplicatedFenceMidQuorumWaitNoRollback(t *testing.T) {
	dir := t.TempDir()
	src, _ := paperSource(t)
	var delivered []Notification
	svc, node := openReplService(t, dir, repl.Config{
		// Quorum is unreachable (no followers) and there is no timeout:
		// the poll blocks in the quorum wait until the node is deposed.
		ID: "a", Ack: repl.AckQuorum, Replicas: 2,
	}, func(n Notification) { delivered = append(delivered, n) })
	defer node.Close()
	if err := node.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe(replTestSub(src)); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := svc.Poll("Restaurants", timestamp.MustParse("30Dec96"))
		errCh <- err
	}()
	qssWaitFor(t, "record appended", func() bool { return node.Status().Applied == 1 })
	node.Demote()
	if err := <-errCh; !errors.Is(err, repl.ErrFenced) {
		t.Fatalf("deposed mid-wait poll: %v", err)
	}
	if len(delivered) != 0 {
		t.Fatalf("deposed poll delivered %d notifications", len(delivered))
	}

	// The record is durable; in-memory id state must equal what a fresh
	// replay of the oplog produces (i.e. not the pre-poll values).
	readIDs := func(s *Service) (oem.NodeID, int, int) {
		s.mu.Lock()
		st := s.subs["Restaurants"]
		s.mu.Unlock()
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.nextID, len(st.remap), len(st.pollTimes)
	}
	liveNext, liveRemap, livePolls := readIDs(svc)
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	svc2, node2 := openReplService(t, dir, repl.Config{ID: "a"}, nil)
	defer node2.Close()
	replayNext, replayRemap, replayPolls := readIDs(svc2)
	if liveNext != replayNext || liveRemap != replayRemap || livePolls != replayPolls {
		t.Fatalf("in-memory id state diverged from oplog replay: live (next=%d remap=%d polls=%d), replay (next=%d remap=%d polls=%d)",
			liveNext, liveRemap, livePolls, replayNext, replayRemap, replayPolls)
	}
	if replayNext <= 1 {
		t.Fatalf("replayed nextID = %d: poll record missing from oplog", replayNext)
	}
}

// TestReplicatedAckTimeoutSuppressesNotification: a quorum write with no
// follower is appended locally but unacknowledged — the poll errors and
// no notification fires, yet the history advanced (matching the repl
// contract: unacknowledged writes may still replicate later).
func TestReplicatedAckTimeoutSuppressesNotification(t *testing.T) {
	dir := t.TempDir()
	src, _ := paperSource(t)
	var delivered []Notification
	svc, node := openReplService(t, dir, repl.Config{
		ID: "a", Ack: repl.AckQuorum, Replicas: 2,
		AckTimeout: 50 * time.Millisecond,
	}, func(n Notification) { delivered = append(delivered, n) })
	defer node.Close()
	if err := node.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Subscribe(replTestSub(src)); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Poll("Restaurants", timestamp.MustParse("30Dec96"))
	if !errors.Is(err, repl.ErrAckTimeout) {
		t.Fatalf("quorum poll with no followers: %v", err)
	}
	if len(delivered) != 0 {
		t.Fatalf("unacknowledged poll delivered %d notifications", len(delivered))
	}
	if _, times, herr := svc.History("Restaurants"); herr != nil || len(times) != 1 {
		t.Fatalf("unacknowledged poll history: times=%d err=%v", len(times), herr)
	}
	if st := node.Status(); st.Applied != 1 || st.Commit != 0 {
		t.Fatalf("status after unacknowledged poll: %+v", st)
	}
}
