package doem

import (
	"math/rand"
	"testing"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// randomHistory builds a random but valid (db, history) pair, driving node
// creation, updates, arc additions and removals from the seed.
func randomHistory(seed int64, steps, opsPerStep int) (*oem.Database, change.History) {
	rng := rand.New(rand.NewSource(seed))
	db := oem.New()
	// Seed structure: a few complex containers with atomic leaves.
	var complexes []oem.NodeID
	complexes = append(complexes, db.Root())
	for i := 0; i < 4; i++ {
		c := db.CreateNode(value.Complex())
		if err := db.AddArc(db.Root(), "container", c); err != nil {
			panic(err)
		}
		complexes = append(complexes, c)
		for j := 0; j < 3; j++ {
			a := db.CreateNode(value.Int(rng.Int63n(100)))
			if err := db.AddArc(c, "leaf", a); err != nil {
				panic(err)
			}
		}
	}

	// Simulate forward to generate valid ops; work on a scratch copy.
	scratch := db.Clone()
	nextID := oem.NodeID(1000)
	t := timestamp.MustParse("1Jan97")
	var h change.History
	for s := 0; s < steps; s++ {
		var set change.Set
		touchedUpd := make(map[oem.NodeID]bool)
		arcTouched := make(map[oem.Arc]bool)
		for o := 0; o < opsPerStep; o++ {
			switch rng.Intn(4) {
			case 0: // create a node and wire it in
				parent := complexes[rng.Intn(len(complexes))]
				if !scratch.Has(parent) || !scratch.IsComplex(parent) {
					continue
				}
				id := nextID
				nextID++
				var v value.Value
				if rng.Intn(3) == 0 {
					v = value.Complex()
				} else {
					v = value.Int(rng.Int63n(1000))
				}
				arc := oem.Arc{Parent: parent, Label: "gen", Child: id}
				if arcTouched[arc] {
					continue
				}
				arcTouched[arc] = true
				set = append(set, change.CreNode{Node: id, Value: v})
				set = append(set, change.AddArc{Parent: parent, Label: "gen", Child: id})
				if v.IsComplex() {
					complexes = append(complexes, id)
				}
			case 1: // update a random atomic leaf
				nodes := scratch.Nodes()
				n := nodes[rng.Intn(len(nodes))]
				v, _ := scratch.Value(n)
				if v.IsComplex() || touchedUpd[n] {
					continue
				}
				touchedUpd[n] = true
				set = append(set, change.UpdNode{Node: n, Value: value.Int(rng.Int63n(1000))})
			case 2: // remove a random arc (not from root, to keep things alive)
				arcs := scratch.Arcs()
				if len(arcs) == 0 {
					continue
				}
				a := arcs[rng.Intn(len(arcs))]
				if a.Parent == scratch.Root() || arcTouched[a] {
					continue
				}
				arcTouched[a] = true
				set = append(set, change.RemArc{Parent: a.Parent, Label: a.Label, Child: a.Child})
			case 3: // cross-link two existing nodes
				nodes := scratch.Nodes()
				p := nodes[rng.Intn(len(nodes))]
				c := nodes[rng.Intn(len(nodes))]
				if !scratch.IsComplex(p) {
					continue
				}
				arc := oem.Arc{Parent: p, Label: "link", Child: c}
				if arcTouched[arc] || scratch.HasArc(p, "link", c) {
					continue
				}
				arcTouched[arc] = true
				set = append(set, change.AddArc{Parent: p, Label: "link", Child: c})
			}
		}
		if err := set.Validate(scratch); err != nil {
			// Rare interaction (e.g. update of a node orphaned earlier in
			// this same set's removals); skip this step.
			continue
		}
		if _, err := set.Apply(scratch); err != nil {
			panic(err)
		}
		h = append(h, change.Step{At: t, Ops: set})
		t = t.Add(24 * 60 * 60 * 1e9) // +1 day
	}
	return db, h
}

// TestPropertyHistoryRoundTrip: for random valid histories,
// H(D(O,H)) replays to the same final state and D is feasible.
func TestPropertyHistoryRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		db, h := randomHistory(seed, 6, 5)
		d, err := FromHistory(db, h)
		if err != nil {
			t.Fatalf("seed %d: FromHistory: %v", seed, err)
		}
		// Property 1: O_0(D) equals the input database.
		if !d.Original().Equal(db) {
			t.Errorf("seed %d: O_0(D) != O", seed)
		}
		// Property 2: replaying H(D) over O_0(D) yields the current snapshot.
		o0 := d.Original()
		eh := d.ExtractHistory()
		if err := eh.Apply(o0); err != nil {
			t.Errorf("seed %d: extracted history invalid: %v", seed, err)
			continue
		}
		if !o0.Equal(d.Current()) {
			t.Errorf("seed %d: H(D) replay != current", seed)
		}
		// Property 3: feasibility (D(O_0(D), H(D)) = D).
		if !d.Feasible() {
			t.Errorf("seed %d: DOEM database infeasible", seed)
		}
	}
}

// TestPropertySnapshotConsistency: for random histories, the snapshot at
// each step time equals the OEM database produced by replaying the history
// prefix up to and including that step.
func TestPropertySnapshotConsistency(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		db, h := randomHistory(seed, 5, 4)
		d, err := FromHistory(db, h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		replay := db.Clone()
		for i, step := range h {
			if _, err := step.Ops.Apply(replay); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
			snap := d.SnapshotAt(step.At)
			if !snap.Equal(replay) {
				t.Errorf("seed %d: SnapshotAt(step %d = %s) != prefix replay\nsnap:\n%s\nreplay:\n%s",
					seed, i, step.At, snap, replay)
			}
		}
		// And the final snapshot equals the current snapshot.
		if len(h) > 0 {
			if !d.SnapshotAt(h[len(h)-1].At).Equal(d.Current()) {
				t.Errorf("seed %d: final snapshot != current", seed)
			}
		}
	}
}

// TestPropertySnapshotBetweenSteps: snapshots at instants strictly between
// steps equal the snapshot at the preceding step.
func TestPropertySnapshotBetweenSteps(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		db, h := randomHistory(seed, 4, 4)
		d, err := FromHistory(db, h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < len(h); i++ {
			mid := h[i].At.Add(3600 * 1e9) // one hour after step i
			if i+1 < len(h) && !mid.Before(h[i+1].At) {
				continue
			}
			if !d.SnapshotAt(mid).Equal(d.SnapshotAt(h[i].At)) {
				t.Errorf("seed %d: snapshot drift between steps %d and %d", seed, i, i+1)
			}
		}
	}
}
