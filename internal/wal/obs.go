package wal

import "repro/internal/obs"

// Log metrics (see docs/observability.md). Counters and histograms are
// no-ops while observability is disabled, so the append path pays one
// atomic load per metric touch.
var (
	mAppends     = obs.NewCounter("wal_appends_total")
	mAppendNs    = obs.NewHistogram("wal_append_ns")
	mFsyncs      = obs.NewCounter("wal_fsync_total")
	mFsyncNs     = obs.NewHistogram("wal_fsync_ns")
	mBytes       = obs.NewCounter("wal_bytes_written_total")
	mSegments    = obs.NewCounter("wal_segments_created_total")
	mCheckpoints = obs.NewCounter("wal_checkpoints_total")
)

// syncActive fsyncs the active segment under the fsync histogram. The
// caller holds l.mu and has checked l.active != nil.
func (l *Log) syncActive() error {
	start := obs.Now()
	err := l.active.Sync()
	mFsyncs.Inc()
	mFsyncNs.ObserveSince(start)
	return err
}
