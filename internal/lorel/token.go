package lorel

import "fmt"

// tokenKind enumerates lexical token categories.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted string literal
	tokInt
	tokReal
	tokTime // unquoted timestamp literal such as 4Jan97
	tokDot
	tokComma
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLAngle // <
	tokRAngle // >
	tokColon
	tokEq  // =
	tokNeq // !=
	tokLeq // <=
	tokGeq // >=
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokHash     // # path wildcard
	tokPipe     // | (path group alternation)
	tokQuestion // ? (path group quantifier)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokInt:
		return "integer"
	case tokReal:
		return "real"
	case tokTime:
		return "timestamp"
	case tokDot:
		return "'.'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokColon:
		return "':'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLeq:
		return "'<='"
	case tokGeq:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokHash:
		return "'#'"
	case tokPipe:
		return "'|'"
	case tokQuestion:
		return "'?'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string // identifier name, string contents, or literal text
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokIdent, tokInt, tokReal, tokTime:
		return fmt.Sprintf("%s %q", t.kind, t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return t.kind.String()
	}
}
