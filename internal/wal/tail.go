package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Tail-following reads. Replication streams records out of a live log while
// Append keeps writing to it, so Replay's hold-the-lock-for-the-whole-scan
// contract is the wrong tool: it would stall every append for the duration
// of a follower catch-up. Records instead snapshots LastSeq under the lock
// and then scans the segment files lock-free, bounded by that snapshot.
//
// Why the lock-free scan is safe: Append writes the full frame to the
// segment file *before* advancing l.seq, and both happen under l.mu. A
// reader that observes bound = l.seq under the same mutex therefore
// observes (same-process file I/O goes through the page cache, so write(2)
// before read(2) suffices) every byte of every frame with seq <= bound.
// Frames beyond the bound may be mid-write — torn — so the scan stops
// *before* decoding the first frame past the bound and never reports a
// decode error for bytes it was not entitled to read.
//
// Concurrent Checkpoint can delete a segment between the directory listing
// and the file read; Records retries the listing and reports ErrCompacted
// once the requested sequence falls under the new checkpoint.

// Rec is one record returned by Records.
type Rec struct {
	Seq     uint64
	Payload []byte
}

// ErrCompacted reports that the requested records have been removed by
// checkpoint compaction; the caller must restart from the checkpoint
// payload (LastCheckpoint) instead of the record stream.
var ErrCompacted = errors.New("wal: requested records compacted away")

// Records returns consecutive records with sequence >= from, up to roughly
// maxBytes of payload (at least one record when any is available), plus the
// last sequence present in the log at call time. It never blocks Append for
// longer than the bound snapshot and is safe to call concurrently with
// Append, Sync, and Checkpoint. A from of 0 is treated as 1.
//
// When from is covered by a checkpoint the records are gone from disk and
// Records returns ErrCompacted.
func (l *Log) Records(from uint64, maxBytes int) (recs []Rec, last uint64, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, 0, ErrClosed
	}
	bound := l.seq
	base := l.ckptSeq
	l.mu.Unlock()

	if from == 0 {
		from = 1
	}
	if from <= base {
		return nil, bound, ErrCompacted
	}
	if from > bound {
		return nil, bound, nil
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	for attempt := 0; ; attempt++ {
		recs, err := l.readRange(from, bound, maxBytes)
		if err == nil {
			return recs, bound, nil
		}
		if errors.Is(err, os.ErrNotExist) || errors.Is(err, ErrCompacted) {
			// A concurrent checkpoint compacted under us: re-check where
			// the log now begins.
			l.mu.Lock()
			base = l.ckptSeq
			l.mu.Unlock()
			if from <= base {
				return nil, bound, ErrCompacted
			}
			if attempt < 2 {
				continue
			}
		}
		return nil, bound, err
	}
}

// readRange scans segment files for records in [from, bound], stopping at
// the byte budget. Called without l.mu; see the package comment above for
// why that is safe.
func (l *Log) readRange(from, bound uint64, maxBytes int) ([]Rec, error) {
	paths, firsts, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	start := -1
	for i := range firsts {
		if firsts[i] <= from {
			start = i
		} else {
			break
		}
	}
	if start < 0 {
		// Every segment starts after from: the records were compacted away
		// (or the log is corrupt, which recovery would have caught).
		return nil, ErrCompacted
	}
	var recs []Rec
	total := 0
	expect := firsts[start]
	for i := start; i < len(paths); i++ {
		if i > start && firsts[i] != expect {
			return nil, fmt.Errorf("wal: records: segment gap at seq %d", expect)
		}
		data, err := os.ReadFile(paths[i])
		if err != nil {
			return nil, fmt.Errorf("wal: records: %w", err)
		}
		off := 0
		for off < len(data) && expect <= bound {
			seq, payload, n, derr := decodeFrame(data[off:])
			if derr != nil {
				return nil, fmt.Errorf("wal: records: %s at offset %d: %w", filepath.Base(paths[i]), off, derr)
			}
			if seq != expect {
				return nil, fmt.Errorf("wal: records: out-of-sequence record %d (want %d)", seq, expect)
			}
			off += n
			expect = seq + 1
			if seq < from {
				continue
			}
			recs = append(recs, Rec{Seq: seq, Payload: payload})
			total += len(payload)
			if total >= maxBytes {
				return recs, nil
			}
		}
		if expect > bound {
			return recs, nil
		}
	}
	if expect <= bound {
		return nil, fmt.Errorf("wal: records: log ends at %d before bound %d", expect-1, bound)
	}
	return recs, nil
}

// Reset discards every record and installs checkpoint as the snapshot
// covering all sequences <= upTo, leaving the log positioned to append
// record upTo+1 next. Unlike Checkpoint, upTo may exceed the current last
// sequence: this is the bootstrap path for a replica that receives a state
// snapshot from its primary and must restart its log at the primary's
// position.
//
// Crash safety: segments are removed before the new checkpoint is
// installed, so a crash in between recovers to the old checkpoint with no
// records — a consistent (if stale) prefix that a replica will simply
// re-request.
func (l *Log) Reset(checkpoint []byte, upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active != nil {
		// Contents are being discarded; close errors only matter for fd
		// hygiene.
		l.active.Close()
		l.active, l.activePath, l.activeSize = nil, "", 0
	}
	paths, _, err := l.listSegments()
	if err != nil {
		return err
	}
	for _, p := range paths {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	if len(paths) > 0 {
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	if err := l.installCheckpointLocked(checkpoint, upTo); err != nil {
		return err
	}
	l.seq = upTo
	return nil
}
