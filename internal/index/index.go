// Package index provides query-path secondary indexes over DOEM databases:
// per-(node, label) adjacency maps, time-sorted annotation lookups resolved
// by binary search, and an LRU-bounded cache of materialized historical
// views keyed by (graph generation, T).
//
// Graph wraps a *doem.Database and implements lorel.Graph plus the
// evaluator's optional fast-path interfaces (lorel.LabelSeeker,
// lorel.AllLabelSeeker, lorel.TimeSeeker). Every accessor returns exactly
// what the unindexed database would — same arcs, same insertion order —
// so indexed and unindexed evaluation are byte-identical; the property and
// fuzz tests in this package enforce that.
//
// Index structures are built lazily on first use and keyed to
// doem.Database.Version(), so a Graph self-detects staleness after Apply
// even without an explicit Invalidate call. Mutation sites (lore.Store
// ApplySet, QSS poll application) still call Invalidate as the documented
// hook; both paths converge on dropping the generation's tables and every
// cached view with them.
//
// Concurrency: Graph is safe for concurrent readers under the same
// contract as doem.Database itself (mutators exclude readers). Internal
// lazy builds and cache updates are guarded by the Graph's own locks.
package index

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/doem"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/plan"
	"repro/internal/symbol"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Default cache capacities. Views are what poll-time and <at T> queries
// hit repeatedly; snapshots are full O_t(D) materializations, larger and
// rarer, so they get a smaller budget. See docs/indexing.md for sizing
// guidance.
const (
	DefaultViewCacheSize     = 16
	DefaultSnapshotCacheSize = 4
)

// Graph is an indexed read-only view of a DOEM database.
type Graph struct {
	d *doem.Database

	viewCap int
	snapCap int

	mu  sync.RWMutex
	tab *tables // nil until first use; rebuilt when d.Version() moves
}

var (
	_ lorel.Graph          = (*Graph)(nil)
	_ lorel.LabelSeeker    = (*Graph)(nil)
	_ lorel.AllLabelSeeker = (*Graph)(nil)
	_ lorel.SymSeeker      = (*Graph)(nil)
	_ lorel.TimeSeeker     = (*Graph)(nil)
)

// NewGraph returns an indexed wrapper over d with default cache sizes.
// Index structures are built on first use, not here.
func NewGraph(d *doem.Database) *Graph {
	return &Graph{d: d, viewCap: DefaultViewCacheSize, snapCap: DefaultSnapshotCacheSize}
}

// SetCacheSizes adjusts the view and snapshot LRU capacities (minimum 1
// each) and drops any cached state.
func (g *Graph) SetCacheSizes(views, snapshots int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if views > 0 {
		g.viewCap = views
	}
	if snapshots > 0 {
		g.snapCap = snapshots
	}
	g.tab = nil
}

// DOEM returns the wrapped database.
func (g *Graph) DOEM() *doem.Database { return g.d }

// Invalidate drops every index structure and cached view. The next read
// rebuilds against the database's current generation. Mutation hooks
// (lore.Store.ApplySet, QSS poll application) call this; the Version()
// self-check makes a missed call safe but a made call immediate.
func (g *Graph) Invalidate() {
	g.mu.Lock()
	g.tab = nil
	g.mu.Unlock()
}

// labelKey addresses the string-keyed adjacency indexes.
type labelKey struct {
	n     oem.NodeID
	label string
}

// symKey addresses the symbol-keyed adjacency indexes: a fixed-size
// 12-byte key (node id + interned label id) whose hash never touches the
// label bytes, unlike labelKey whose hash walks the string.
type symKey struct {
	n   oem.NodeID
	sym symbol.ID
}

// tables holds every structure derived from one database generation.
// Dropping the tables drops all cached views and snapshots with it, which
// is what keys the caches by (generation, T).
type tables struct {
	gen uint64
	// nodes is AllNodeIDs() at build time: every node ever, ascending.
	nodes []oem.NodeID
	// bySym records whether this generation's adjacency maps are keyed by
	// interned symbol id (interning enabled at build time) or by string.
	// Exactly one keying is populated per build; the accessors dispatch on
	// this flag, so a gate flip between build and query degrades to a
	// rebuild-on-invalidate rather than serving from an empty map.
	bySym bool
	// outLabeled indexes the current snapshot's arcs by (parent, label),
	// preserving insertion order within each label. When bySym, it holds
	// only arcs whose label could not be interned (symbol-table overflow;
	// in practice empty).
	outLabeled map[labelKey][]oem.Arc
	// outAllLabeled is the same over the full arc relation, removed arcs
	// included.
	outAllLabeled map[labelKey][]oem.Arc
	// outLabeledSym / outAllLabeledSym are the symbol-keyed forms,
	// populated only when bySym.
	outLabeledSym    map[symKey][]oem.Arc
	outAllLabeledSym map[symKey][]oem.Arc
	// updInfos caches UpdTriples per node (upd annotations ascending by
	// timestamp, with derived new values) so <upd ...> matching and
	// ValueAt binary searches reuse one materialization.
	updInfos map[oem.NodeID][]doem.UpdInfo

	// Planner statistics, accumulated during the same build pass (see
	// stats.go): per-label cardinalities plus arc/annotation totals.
	labelStats map[string]plan.LabelCard
	arcTotal   int
	annotTotal int

	// mu guards the caches below (lru.get mutates recency order).
	mu    sync.Mutex
	views *lru[timestamp.Time, *view]
	snaps *lru[timestamp.Time, *oem.Database]

	// hot is the most recently returned view. A single <at T> query calls
	// OutAt once per traversed node with the same T, so this lock-free
	// check turns the common repeat into one atomic load instead of a
	// mutex acquisition plus an LRU reorder.
	hot atomic.Pointer[hotView]
}

// hotView pairs a view with the instant it materializes.
type hotView struct {
	t timestamp.Time
	v *view
}

// view is the live-arc relation of the whole database at one instant T:
// for every node ever present, the arcs of OutAll that ArcLiveAt(·, T)
// admits, in insertion order. Unlike a garbage-collected snapshot it keeps
// arcs of nodes unreachable at T, because direct evaluation can traverse
// such arcs (a node reached through the current snapshot and then stepped
// through <at T>); dropping them would diverge from the unindexed path.
type view struct {
	out map[oem.NodeID][]oem.Arc
}

// tables returns the index structures for the database's current
// generation, building them on first use or after a mutation.
func (g *Graph) tables() *tables {
	gen := g.d.Version()
	g.mu.RLock()
	t := g.tab
	g.mu.RUnlock()
	if t != nil && t.gen == gen {
		return t
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.tab != nil && g.tab.gen == gen {
		return g.tab
	}
	start := now()
	g.tab = buildTables(g.d, gen, g.viewCap, g.snapCap)
	mBuilds.Inc()
	mBuildNs.ObserveSince(start)
	return g.tab
}

func buildTables(d *doem.Database, gen uint64, viewCap, snapCap int) *tables {
	t := &tables{
		gen:           gen,
		bySym:         symbol.Enabled(),
		nodes:         d.AllNodeIDs(),
		outLabeled:    make(map[labelKey][]oem.Arc),
		outAllLabeled: make(map[labelKey][]oem.Arc),
		updInfos:      make(map[oem.NodeID][]doem.UpdInfo),
		labelStats:    make(map[string]plan.LabelCard),
		annotTotal:    d.NumAnnotations(),
		views:         newLRU[timestamp.Time, *view](viewCap),
		snaps:         newLRU[timestamp.Time, *oem.Database](snapCap),
	}
	if t.bySym {
		t.outLabeledSym = make(map[symKey][]oem.Arc)
		t.outAllLabeledSym = make(map[symKey][]oem.Arc)
	}
	// appendCur/appendAll route an arc to the active keying and report
	// whether it opened a new (parent, label) bucket. Labels reaching here
	// were canonicalized at AddArc, so the Intern call is a lock-free hit.
	appendCur := func(n oem.NodeID, a oem.Arc) (first bool) {
		if t.bySym {
			if id, _ := symbol.Intern(a.Label); id != symbol.None {
				k := symKey{n, id}
				first = len(t.outLabeledSym[k]) == 0
				t.outLabeledSym[k] = append(t.outLabeledSym[k], a)
				return first
			}
		}
		k := labelKey{n, a.Label}
		first = len(t.outLabeled[k]) == 0
		t.outLabeled[k] = append(t.outLabeled[k], a)
		return first
	}
	appendAll := func(n oem.NodeID, a oem.Arc) (first bool) {
		if t.bySym {
			if id, _ := symbol.Intern(a.Label); id != symbol.None {
				k := symKey{n, id}
				first = len(t.outAllLabeledSym[k]) == 0
				t.outAllLabeledSym[k] = append(t.outAllLabeledSym[k], a)
				return first
			}
		}
		k := labelKey{n, a.Label}
		first = len(t.outAllLabeled[k]) == 0
		t.outAllLabeled[k] = append(t.outAllLabeled[k], a)
		return first
	}
	root := d.Root()
	for _, n := range t.nodes {
		for _, a := range d.Out(n) {
			lc := t.labelStats[a.Label]
			if appendCur(n, a) {
				lc.Parents++
			}
			lc.Arcs++
			if n == root {
				lc.RootOut++
			}
			t.labelStats[a.Label] = lc
			t.arcTotal++
		}
		for _, a := range d.OutAll(n) {
			lc := t.labelStats[a.Label]
			if appendAll(n, a) {
				lc.AllParents++
			}
			lc.AllArcs++
			if n == root {
				lc.AllRootOut++
			}
			t.labelStats[a.Label] = lc
		}
		if ups := d.UpdTriples(n); len(ups) > 0 {
			t.updInfos[n] = ups
		}
	}
	return t
}

// --- lorel.Graph: plain delegates -----------------------------------------

// Root returns the root object id.
func (g *Graph) Root() oem.NodeID { return g.d.Root() }

// Value returns the current (final) value of n.
func (g *Graph) Value(n oem.NodeID) (value.Value, bool) { return g.d.Value(n) }

// Out returns the current-snapshot arcs of n, in insertion order.
func (g *Graph) Out(n oem.NodeID) []oem.Arc { return g.d.Out(n) }

// OutAll returns every arc of n including removed ones.
func (g *Graph) OutAll(n oem.NodeID) []oem.Arc { return g.d.OutAll(n) }

// CreTime returns n's creation annotation, if any.
func (g *Graph) CreTime(n oem.NodeID) (timestamp.Time, bool) { return g.d.CreTime(n) }

// ArcAnnots returns the annotations on arc a in timestamp order.
func (g *Graph) ArcAnnots(a oem.Arc) []doem.ArcAnnot { return g.d.ArcAnnots(a) }

// --- lorel.Graph: indexed implementations ---------------------------------

// UpdTriples returns n's upd annotations with derived new values, served
// from the per-generation cache instead of re-deriving on every call.
func (g *Graph) UpdTriples(n oem.NodeID) []doem.UpdInfo { return g.tables().updInfos[n] }

// ValueAt returns the value of n at time t, binary-searching the
// time-sorted upd annotations: if the latest upd is at or before t (or
// there are none) the current value, otherwise the old value of the
// earliest upd strictly after t — identical to doem.Database.ValueAt.
func (g *Graph) ValueAt(n oem.NodeID, t timestamp.Time) value.Value {
	ups := g.tables().updInfos[n]
	cur, _ := g.d.Value(n)
	if len(ups) == 0 || !ups[len(ups)-1].At.After(t) {
		return cur
	}
	i := sort.Search(len(ups), func(i int) bool { return ups[i].At.After(t) })
	return ups[i].Old
}

// ArcLiveAt reports whether arc a existed at time t, binary-searching the
// arc's time-sorted annotation list. Semantics match
// doem.Database.ArcLiveAt exactly, including the inclusive boundary: an
// annotation timestamped exactly t takes effect at t.
func (g *Graph) ArcLiveAt(a oem.Arc, t timestamp.Time) bool {
	return arcLiveAt(g.d, a, t)
}

// arcLiveAt is the binary-search form of doem.Database.ArcLiveAt: the
// arc's state is decided by the latest annotation with At <= t, or by the
// arc's initial liveness (no annotations, or earliest is rem) if none.
func arcLiveAt(d *doem.Database, a oem.Arc, t timestamp.Time) bool {
	anns := d.ArcAnnots(a)
	k := sort.Search(len(anns), func(i int) bool { return anns[i].At.After(t) })
	if k == 0 {
		return len(anns) == 0 || anns[0].Kind == doem.AnnotRem
	}
	return anns[k-1].Kind == doem.AnnotAdd
}

// --- optional evaluator fast paths ----------------------------------------

// OutLabeled implements lorel.LabelSeeker. On symbol-keyed tables the
// string is resolved through the symbol table; a Lookup miss means the
// label appears nowhere in any graph built under interning (every label
// present was interned during the table build), so nil is the correct
// answer, not a degraded one.
func (g *Graph) OutLabeled(n oem.NodeID, label string) []oem.Arc {
	t := g.tables()
	if t.bySym {
		if id, ok := symbol.Lookup(label); ok {
			return t.outLabeledSym[symKey{n, id}]
		}
	}
	return t.outLabeled[labelKey{n, label}]
}

// OutAllLabeled implements lorel.AllLabelSeeker.
func (g *Graph) OutAllLabeled(n oem.NodeID, label string) []oem.Arc {
	t := g.tables()
	if t.bySym {
		if id, ok := symbol.Lookup(label); ok {
			return t.outAllLabeledSym[symKey{n, id}]
		}
	}
	return t.outAllLabeled[labelKey{n, label}]
}

// OutLabeledSym implements lorel.SymSeeker: an exact-label probe keyed by
// interned symbol id, skipping the string hash entirely. ok=false when
// this generation's tables are string-keyed (interning was disabled at
// build time); the evaluator then falls back to OutLabeled.
func (g *Graph) OutLabeledSym(n oem.NodeID, sym symbol.ID) ([]oem.Arc, bool) {
	t := g.tables()
	if !t.bySym {
		return nil, false
	}
	return t.outLabeledSym[symKey{n, sym}], true
}

// OutAllLabeledSym implements lorel.SymSeeker over the full arc relation.
func (g *Graph) OutAllLabeledSym(n oem.NodeID, sym symbol.ID) ([]oem.Arc, bool) {
	t := g.tables()
	if !t.bySym {
		return nil, false
	}
	return t.outAllLabeledSym[symKey{n, sym}], true
}

// OutAt implements lorel.TimeSeeker: the arcs of n live at time t, from
// the (generation, t)-keyed view cache.
func (g *Graph) OutAt(n oem.NodeID, t timestamp.Time) []oem.Arc {
	return g.viewAt(t).out[n]
}

// viewAt returns the materialized live-arc view for time t, building and
// caching it on a miss.
func (g *Graph) viewAt(t timestamp.Time) *view {
	tab := g.tables()
	if h := tab.hot.Load(); h != nil && h.t == t {
		mCacheHits.Inc()
		return h.v
	}
	tab.mu.Lock()
	if v, ok := tab.views.get(t); ok {
		tab.mu.Unlock()
		tab.hot.Store(&hotView{t: t, v: v})
		mCacheHits.Inc()
		return v
	}
	tab.mu.Unlock()
	mCacheMisses.Inc()
	start := now()
	v := buildView(g.d, tab, t)
	mSnapshotBuildNs.ObserveSince(start)
	tab.mu.Lock()
	defer tab.mu.Unlock()
	if cached, ok := tab.views.get(t); ok {
		// A concurrent reader built the same view; keep the cached one.
		tab.hot.Store(&hotView{t: t, v: cached})
		return cached
	}
	if tab.views.add(t, v) {
		mCacheEvictions.Inc()
	}
	tab.hot.Store(&hotView{t: t, v: v})
	return v
}

func buildView(d *doem.Database, tab *tables, t timestamp.Time) *view {
	v := &view{out: make(map[oem.NodeID][]oem.Arc, len(tab.nodes))}
	for _, n := range tab.nodes {
		all := d.OutAll(n)
		var live []oem.Arc
		for _, a := range all {
			if arcLiveAt(d, a, t) {
				live = append(live, a)
			}
		}
		if live != nil {
			v.out[n] = live
		}
	}
	return v
}

// --- memoized snapshot extraction -----------------------------------------

// SnapshotAt materializes O_t(D) like doem.Database.SnapshotAt, memoized
// in an LRU keyed by (generation, t). The returned database is shared
// between callers and with the cache: treat it as read-only and Clone it
// before mutating.
func (g *Graph) SnapshotAt(t timestamp.Time) *oem.Database {
	tab := g.tables()
	tab.mu.Lock()
	if s, ok := tab.snaps.get(t); ok {
		tab.mu.Unlock()
		mCacheHits.Inc()
		return s
	}
	tab.mu.Unlock()
	mCacheMisses.Inc()
	start := now()
	s := g.d.SnapshotAt(t)
	mSnapshotBuildNs.ObserveSince(start)
	tab.mu.Lock()
	defer tab.mu.Unlock()
	if cached, ok := tab.snaps.get(t); ok {
		return cached
	}
	if tab.snaps.add(t, s) {
		mCacheEvictions.Inc()
	}
	return s
}
