package htmldiff

import "testing"

// FuzzToOEM: the tolerant HTML parser must accept any input without
// panicking and always yield a valid OEM database.
func FuzzToOEM(f *testing.F) {
	seeds := []string{
		guideV1,
		guideV2,
		`<a href="x" b=c d>text</a>`,
		`<ul><li>a<li>b</ul>`,
		`</div><p>stray`,
		`<script>if(a<b){}</script>`,
		`<!-- comment -->&amp;&bogus;`,
		`<<<<>>>>`,
		"<p>\x00\xff</p>",
		`<a href='mixed"quotes`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db := ToOEM(src)
		if err := db.Validate(); err != nil {
			t.Fatalf("invalid OEM from %q: %v", src, err)
		}
	})
}

// FuzzMarkup: diffing and marking up arbitrary version pairs must not
// panic, and the output must not contain unescaped input text markers.
func FuzzMarkup(f *testing.F) {
	f.Add(`<p>a</p>`, `<p>b</p>`)
	f.Add(guideV1, guideV2)
	f.Add(``, `<ul><li>x</ul>`)
	f.Fuzz(func(t *testing.T, oldHTML, newHTML string) {
		if len(oldHTML) > 4096 || len(newHTML) > 4096 {
			return
		}
		if _, err := Markup(oldHTML, newHTML); err != nil {
			t.Fatalf("Markup: %v", err)
		}
	})
}
