// The paper's complete running example: the Palo Alto Weekly restaurant
// guide (Figure 2), the January 1997 history (Examples 2.2-2.3), the DOEM
// database it induces (Figure 4), and every query of Examples 4.1-4.5,
// including the Section 5 translation of Example 4.5 into Lorel over the
// OEM encoding (Example 5.1).
package main

import (
	"fmt"
	"log"

	"repro/internal/chorel"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/guidegen"
)

func main() {
	db, ids := guidegen.PaperGuide()
	fmt.Println("== Figure 2: the Guide database ==")
	fmt.Print(db)

	cdb, err := core.FromHistory("guide", db, guidegen.PaperHistory(ids))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 4: the DOEM database after the history ==")
	fmt.Print(cdb.DOEM())

	queries := []struct {
		title string
		text  string
	}{
		{"Example 4.1 — coercing comparison (answer: Bangkok Cuisine)",
			`select guide.restaurant where guide.restaurant.price < 20.5`},
		{"Example 4.2 — newly added restaurants (answer: Hakata)",
			`select guide.<add>restaurant`},
		{"Example 4.3 — added before 4Jan97 (answer: Hakata)",
			`select guide.<add at T>restaurant where T < 4Jan97`},
		{"Example 4.4 — price updates with time and new value",
			`select N, T, NV
			 from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N
			 where T >= 1Jan97 and NV > 15`},
		{"Example 4.5 — moderate price added since 1Jan97 (answer: empty)",
			`select N from guide.restaurant R, R.name N
			 where R.<add at T>price = "moderate" and T >= 1Jan97`},
		{"Removed arcs — who lost their parking, and when",
			`select N, T from guide.restaurant R, R.name N, R.<rem at T>parking P`},
	}
	for _, q := range queries {
		fmt.Printf("\n== %s ==\n%s\n", q.title, q.text)
		res, err := cdb.Query(q.text)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res)
	}

	// Example 5.1: the Chorel-to-Lorel translation of Example 4.5.
	fmt.Println("\n== Example 5.1: translating Example 4.5 to Lorel over the OEM encoding ==")
	translated, err := chorel.TranslateString(
		`select N from guide.restaurant R, R.name N
		 where R.<add at T>price = "moderate" and T >= 1Jan97`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(translated)

	// Run a query through both strategies and confirm they agree.
	fmt.Println("\n== Section 5: both execution strategies agree ==")
	const q = `select guide.<add>restaurant`
	direct, err := cdb.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	trans, err := cdb.QueryTranslated(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct:     %d row(s), DOEM node %v\n", direct.Len(), direct.FirstColumnNodes())
	fmt.Printf("translated: %d row(s), mapped back to %v\n", trans.Len(), cdb.MapToDOEM(trans.FirstColumnNodes()))

	// Encoding overhead (the Section 5.1 price of the layered strategy).
	enc := encoding.Encode(cdb.DOEM())
	stats := encoding.Measure(cdb.DOEM(), enc)
	fmt.Printf("\nOEM encoding size: %d nodes / %d arcs for %d DOEM nodes / %d arcs (+%d annotations)\n",
		stats.EncNodes, stats.EncArcs, stats.DOEMNodes, stats.DOEMArcs, stats.Annotations)

}
