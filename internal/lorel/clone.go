package lorel

// Deep copies of AST nodes, used wherever a parsed artifact must survive
// the in-place rewriting that canonicalization performs (e.g. compiling an
// update statement more than once).

// cloneExpr deep-copies an expression tree. nil yields nil.
func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ConstExpr:
		c := *x
		return &c
	case *TimeRefExpr:
		c := *x
		return &c
	case *PathValueExpr:
		return &PathValueExpr{Path: clonePath(x.Path)}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R), P: x.P}
	case *NotExpr:
		return &NotExpr{E: cloneExpr(x.E), P: x.P}
	case *ExistsExpr:
		return &ExistsExpr{Var: x.Var, In: clonePath(x.In), Cond: cloneExpr(x.Cond), P: x.P}
	case *AggExpr:
		return &AggExpr{Fn: x.Fn, Path: clonePath(x.Path), P: x.P}
	default:
		return e
	}
}

// clonePath deep-copies a path expression.
func clonePath(p *PathExpr) *PathExpr {
	if p == nil {
		return nil
	}
	c := &PathExpr{Head: p.Head, P: p.P}
	for _, s := range p.Steps {
		cs := &PathStep{Label: s.Label, Hash: s.Hash, Quoted: s.Quoted, P: s.P}
		if s.Group != nil {
			g := &PathGroup{Quant: s.Group.Quant}
			for _, alt := range s.Group.Alts {
				g.Alts = append(g.Alts, append([]string(nil), alt...))
			}
			cs.Group = g
		}
		if s.Arc != nil {
			cs.Arc = cloneAnnot(s.Arc)
		}
		if s.Node != nil {
			cs.Node = cloneAnnot(s.Node)
		}
		c.Steps = append(c.Steps, cs)
	}
	return c
}

func cloneAnnot(a *AnnotExpr) *AnnotExpr {
	c := &AnnotExpr{Op: a.Op, AtVar: a.AtVar, FromVar: a.FromVar, ToVar: a.ToVar, P: a.P}
	if a.AtExpr != nil {
		c.AtExpr = cloneExpr(a.AtExpr)
	}
	return c
}

// CloneQuery deep-copies a query so a cached parse can be canonicalized and
// evaluated independently (canonicalization mutates the AST).
func CloneQuery(q *Query) *Query {
	c := &Query{}
	for _, s := range q.Select {
		c.Select = append(c.Select, SelectItem{Expr: cloneExpr(s.Expr), Label: s.Label})
	}
	for _, f := range q.From {
		c.From = append(c.From, FromItem{Path: clonePath(f.Path), Var: f.Var})
	}
	for _, f := range q.WhereGens {
		c.WhereGens = append(c.WhereGens, FromItem{Path: clonePath(f.Path), Var: f.Var})
	}
	c.Where = cloneExpr(q.Where)
	return c
}
