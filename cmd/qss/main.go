// Command qss runs the Query Subscription Service server (paper Section 6,
// Figure 7). It hosts one or more information sources and accepts QSC
// client connections over TCP.
//
// Usage:
//
//	qss [-listen ADDR] [-guide N] [-library N] [-evolve DUR] [-parallel N] [-waldir DIR] [-walsync POLICY] [-csv NAME=PATH:KEY:ROW]...
//
// Built-in demo sources:
//
//	guide    a synthetic restaurant guide with N entries that evolves
//	         every -evolve interval (default 2s), polled as "guide"
//	library  a circulation simulator with N books, polled as "library"
//
// CSV sources re-read PATH on every poll, exposing rows as ROW objects
// keyed by the KEY column.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/guidegen"
	"repro/internal/library"
	"repro/internal/oem"
	"repro/internal/qss"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

type csvFlags []string

func (c *csvFlags) String() string     { return strings.Join(*c, ",") }
func (c *csvFlags) Set(s string) error { *c = append(*c, s); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:4997", "address to listen on")
	guideN := flag.Int("guide", 50, "restaurants in the demo guide source")
	libN := flag.Int("library", 30, "books in the demo library source")
	evolve := flag.Duration("evolve", 2*time.Second, "interval between demo source changes")
	seed := flag.Int64("seed", 1, "random seed for the demo sources")
	parallel := flag.Int("parallel", 1, "query evaluation workers per poll (0 = GOMAXPROCS)")
	walDir := flag.String("waldir", "", "directory for per-subscription write-ahead logs (empty: no persistence)")
	walSync := flag.String("walsync", "interval", "WAL durability: always | interval | never")
	var csvs csvFlags
	flag.Var(&csvs, "csv", "CSV source as NAME=PATH:KEY:ROW (repeatable)")
	flag.Parse()

	if err := run(*listen, *guideN, *libN, *evolve, *seed, *parallel, *walDir, *walSync, csvs); err != nil {
		fmt.Fprintln(os.Stderr, "qss:", err)
		os.Exit(1)
	}
}

func run(listen string, guideN, libN int, evolve time.Duration, seed int64, parallel int, walDir, walSync string, csvs []string) error {
	sources := make(map[string]wrapper.Source)

	// Demo guide: a mutable source evolved by a background goroutine.
	ev := guidegen.NewEvolver(seed, guideN)
	guideSrc := wrapper.NewMutable(ev.DB)
	sources["guide"] = guideSrc

	// Demo library.
	sim := library.New(seed, libN)
	libSrc := wrapper.NewMutable(sim.DB())
	sources["library"] = libSrc

	for _, spec := range csvs {
		name, src, err := parseCSVSpec(spec)
		if err != nil {
			return err
		}
		sources[name] = src
	}

	// Background evolution of the demo sources.
	rng := rand.New(rand.NewSource(seed))
	go func() {
		for {
			time.Sleep(evolve)
			guideSrc.Mutate(func(*oem.Database) error {
				ev.Step(2 + rng.Intn(4))
				return nil
			})
			libSrc.Mutate(func(*oem.Database) error {
				sim.Step(1 + rng.Intn(3))
				return nil
			})
		}
	}()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("qss: listening on %s (sources: %s)\n", ln.Addr(), sourceNames(sources))
	srv := qss.NewServer(sources, qss.RealClock{})
	if parallel != 1 {
		srv.Service().SetParallelism(parallel)
	}
	if walDir != "" {
		var pol wal.SyncPolicy
		switch walSync {
		case "always":
			pol = wal.SyncAlways
		case "interval":
			pol = wal.SyncInterval
		case "never":
			pol = wal.SyncNever
		default:
			return fmt.Errorf("bad -walsync %q (want always, interval, or never)", walSync)
		}
		if err := srv.EnableWAL(walDir, &wal.Options{Sync: pol}); err != nil {
			return err
		}
		fmt.Printf("qss: logging subscriptions under %s (sync=%s)\n", walDir, walSync)
	}
	srv.Serve(ln)
	return nil
}

func parseCSVSpec(spec string) (string, wrapper.Source, error) {
	eq := strings.IndexByte(spec, '=')
	if eq < 0 {
		return "", nil, fmt.Errorf("bad -csv spec %q (want NAME=PATH:KEY:ROW)", spec)
	}
	name := spec[:eq]
	parts := strings.Split(spec[eq+1:], ":")
	if len(parts) != 3 {
		return "", nil, fmt.Errorf("bad -csv spec %q (want NAME=PATH:KEY:ROW)", spec)
	}
	path, key, row := parts[0], parts[1], parts[2]
	src := wrapper.NewCSV(row, key, func() (string, error) {
		data, err := os.ReadFile(path)
		return string(data), err
	})
	return name, src, nil
}

func sourceNames(m map[string]wrapper.Source) string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}
