// Package plan_test holds the planner's parity property test. It lives in
// an external test package so it can drive the full stack — lorel engines
// over raw DOEM databases, index.Graph wrappers, and segmented stores —
// without an import cycle back into internal/plan.
package plan_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/timestamp"
)

// candidateTimes collects instants that exercise every interesting case:
// each recorded step time exactly (the inclusive boundary), one second on
// either side of it, and instants before the first and after the last
// change.
func candidateTimes(d *doem.Database) []timestamp.Time {
	steps := d.Steps()
	var ts []timestamp.Time
	for _, s := range steps {
		ts = append(ts, s, s.Add(-1e9), s.Add(1e9))
	}
	if len(steps) > 0 {
		ts = append(ts, steps[0].Add(-86400e9), steps[len(steps)-1].Add(86400e9))
	} else {
		ts = append(ts, timestamp.MustParse("1Jan97"))
	}
	return ts
}

// randomQuery draws one query from a template pool biased toward shapes the
// planner acts on — multi-generator joins with selective predicates, wide
// generators written before narrow ones, annotation and <at T> constraints
// — plus shapes it must refuse (aggregates, path-valued select items) so
// the legacy fallback is exercised under the same parity oracle.
func randomQuery(rng *rand.Rand, times []timestamp.Time) string {
	at := func() string { return fmt.Sprintf("%q", times[rng.Intn(len(times))].String()) }
	price := func() int { return 5 + rng.Intn(40) }
	switch rng.Intn(16) {
	case 0:
		return `select guide.restaurant.name`
	case 1:
		return fmt.Sprintf(`select N from guide.restaurant R, R.name N where R.price < %d`, price())
	case 2:
		// The headline reorder shape: wide subtree before a narrow,
		// predicated label generator.
		return fmt.Sprintf(`select X from guide.restaurant R, R.# X, R.price P where P < %d`, price())
	case 3:
		return fmt.Sprintf(`select N from guide.# X, guide.restaurant R, R.name N where R.price < %d`, price())
	case 4:
		return fmt.Sprintf(`select guide.<at %s>restaurant.name`, at())
	case 5:
		return fmt.Sprintf(`select R from guide.<at %s>restaurant R, R.<at %s>price P where P < %d`,
			at(), at(), price())
	case 6:
		return `select N, T from guide.<add at T>restaurant R, R.name N`
	case 7:
		return fmt.Sprintf(`select N from guide.<add at T>restaurant R, R.name N where T > %s`, at())
	case 8:
		return `select T from guide.<rem at T>restaurant`
	case 9:
		return `select T, OV, NV from guide.restaurant.price<upd at T from OV to NV>`
	case 10:
		return `select guide.#.name`
	case 11:
		return fmt.Sprintf(`select N, T from guide.restaurant<cre at T> R, R.name N where T >= %s`, at())
	case 12:
		return fmt.Sprintf(`select T from guide.<add at T>restaurant where T > t[-%d]`, 1+rng.Intn(5))
	case 13:
		// Three-way join with a cross-variable predicate.
		return fmt.Sprintf(`select N, C from guide.restaurant R, R.name N, R.cuisine C where R.price < %d`, price())
	case 14:
		// Aggregate select: unplannable, must fall back byte-identically.
		return `select count(R.comment) from guide.restaurant R where R.price < 20`
	default:
		return `select guide.restaurant.commen%`
	}
}

// checkParity runs q through the planner-off reference engine and the
// planner-on serial and parallel engines, requiring byte-identical output.
func checkParity(t *testing.T, label, q string, off, on, par *lorel.Engine) {
	t.Helper()
	want, err := off.Query(q)
	if err != nil {
		t.Fatalf("%s: planner-off %q: %v", label, q, err)
	}
	got, err := on.Query(q)
	if err != nil {
		t.Fatalf("%s: planner-on %q: %v", label, q, err)
	}
	if want.String() != got.String() {
		t.Errorf("%s: planned result diverges for %q:\nplanner-off:\n%s\nplanner-on:\n%s",
			label, q, want, got)
	}
	pgot, err := par.Query(q)
	if err != nil {
		t.Fatalf("%s: planner-on parallel %q: %v", label, q, err)
	}
	if want.String() != pgot.String() {
		t.Errorf("%s: planned parallel result diverges for %q:\nplanner-off:\n%s\nplanner-on parallel:\n%s",
			label, q, want, pgot)
	}
}

// trio builds the three engines (planner off, planner on, planner on with
// 4 workers) over the same graph, sharing poll times.
func trio(g lorel.Graph, polls []timestamp.Time) (off, on, par *lorel.Engine) {
	off = lorel.NewEngine()
	off.SetPlanning(false)
	on = lorel.NewEngine()
	on.SetPlanning(true)
	par = lorel.NewEngine()
	par.SetPlanning(true)
	par.SetParallelism(4)
	for _, e := range []*lorel.Engine{off, on, par} {
		e.Register("guide", g)
		e.SetPollTimes(polls)
	}
	return off, on, par
}

// TestPlannerEvalParity is the tentpole's property test: over randomized
// histories, planner-on evaluation (serial and parallel) must be
// byte-identical to planner-off written-order evaluation on well over 100
// randomized queries, against a monolithic DOEM database, its indexed
// wrapper, and a segmented store of the same history.
func TestPlannerEvalParity(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	snap0 := obs.Snapshot()
	total := 0
	for seed := int64(1); seed <= 4; seed++ {
		initial, h := guidegen.GenerateHistory(seed, 12, 25, 6)
		mono, err := doem.FromHistory(initial.Clone(), h)
		if err != nil {
			t.Fatalf("seed %d: FromHistory: %v", seed, err)
		}

		// Segmented store holding the same history, sealed at random points.
		sealRng := rand.New(rand.NewSource(seed * 104729))
		st, err := segment.Create(filepath.Join(t.TempDir(), "store"), doem.New(initial), nil, nil)
		if err != nil {
			t.Fatalf("seed %d: segment.Create: %v", seed, err)
		}
		defer st.Close()
		for i, step := range h {
			if err := st.Apply(step.At, step.Ops); err != nil {
				t.Fatalf("seed %d: segmented apply step %d: %v", seed, i, err)
			}
			if sealRng.Intn(5) == 0 {
				if err := st.Seal(); err != nil {
					t.Fatalf("seed %d: seal after step %d: %v", seed, i, err)
				}
			}
		}

		steps := mono.Steps()
		polls := steps[:len(steps)/2+1]
		rawOff, rawOn, rawPar := trio(mono, polls)
		idxOff, idxOn, idxPar := trio(index.NewGraph(mono), polls)
		segOff, segOn, segPar := trio(st.Graph(), polls)

		rng := rand.New(rand.NewSource(seed * 7919))
		times := candidateTimes(mono)
		for i := 0; i < 30; i++ {
			q := randomQuery(rng, times)
			checkParity(t, fmt.Sprintf("seed %d raw", seed), q, rawOff, rawOn, rawPar)
			checkParity(t, fmt.Sprintf("seed %d indexed", seed), q, idxOff, idxOn, idxPar)
			checkParity(t, fmt.Sprintf("seed %d segmented", seed), q, segOff, segOn, segPar)
			total++
		}
	}
	if total < 100 {
		t.Fatalf("property test ran only %d queries, want >= 100", total)
	}

	// The property is vacuous if the planner never actually ran or never
	// reordered anything: require both over the whole run.
	snap1 := obs.Snapshot()
	if d := snap1.Counters["lorel_plan_execs_total"] - snap0.Counters["lorel_plan_execs_total"]; d == 0 {
		t.Error("planner executed no queries over the entire property run")
	}
	if d := snap1.Counters["lorel_plan_reordered_total"] - snap0.Counters["lorel_plan_reordered_total"]; d == 0 {
		t.Error("planner reordered no queries over the entire property run")
	}
}
