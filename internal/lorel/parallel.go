package lorel

import "sync"

// evalParallel evaluates a canonicalized query by partitioning the
// outermost from-clause binding stream across workers goroutines.
//
// The outermost generator's bindings are computed serially (path expansion
// for a single generator is cheap relative to the nested enumeration it
// feeds), then split into contiguous ranges, one per worker. Each worker
// owns a forked evaluation and enumerates the remaining generators for its
// range exactly as serial evaluation would, collecting rows into a private
// shard with a private dedup map. Shards are concatenated in partition
// order under a global dedup, which yields the same row sequence as serial
// evaluation: dedup keeps the first occurrence, so deduplicating
// already-deduplicated shards in order is equivalent to deduplicating the
// full serial stream.
//
// done reports whether parallel evaluation handled the query; when false
// the caller must fall back to serial evaluation (no generators to
// partition, or too few outer bindings to be worth fanning out — the
// serial path also owns the empty-generator existential-null semantics).
func (ev *evaluation) evalParallel(q *Query, gens []FromItem, strict, workers int) (res *Result, done bool, err error) {
	if len(gens) == 0 {
		return nil, false, nil
	}
	outer, err := ev.evalPath(nil, gens[0].Path)
	if err != nil {
		return nil, true, err
	}
	if len(outer) < 2 {
		return nil, false, nil
	}
	if workers > len(outer) {
		workers = len(outer)
	}

	mParallel.Inc()
	type shard struct {
		rows []Row
		// errAt is the outer-binding index at which err occurred; the
		// merge returns the error with the smallest index, which is the
		// first error serial evaluation would have hit.
		errAt int
		err   error
		// Worker-local stat counters, copied out of the forked evaluation
		// after the worker finishes and summed into the parent by the merge
		// loop (never touched concurrently, so collection is race-clean).
		bindings  int64
		dedupHits int64
	}
	shards := make([]shard, workers)
	// In streaming mode each worker sends rows over a bounded channel as
	// they are produced; the merge consumes the channels in partition order
	// while later workers are still running, so shards never buffer in full
	// and the first rows reach the merged result before the last outer
	// binding has been enumerated. Order is unchanged: channel i is drained
	// to exhaustion before channel i+1 is touched, which is exactly the
	// concatenation order the buffered merge uses.
	var chans []chan Row
	if ev.stream {
		chans = make([]chan Row, workers)
		for w := range chans {
			chans[w] = make(chan Row, 256)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(outer) / workers
		hi := (w + 1) * len(outer) / workers
		wg.Add(1)
		go func(w int, sh *shard, lo, hi int) {
			defer wg.Done()
			sp := ev.trace.StartSpan("worker")
			wev := ev.fork()
			seen := make(map[string]bool)
			rows := 0
			var emit func(*env) error
			if ev.stream {
				ch := chans[w]
				// errAt/err are written before close(ch); the merge reads
				// them only after draining ch, so close synchronizes the
				// hand-off.
				defer close(ch)
				emit = wev.emitterTo(q, seen, func(row Row) { rows++; ch <- row })
			} else {
				emit = wev.emitter(q, &sh.rows, seen)
			}
			for i := lo; i < hi; i++ {
				r := outer[i]
				en := r.env.extend(gens[0].Var, r.b)
				if err := wev.enumerate(gens, 1, strict, en, emit); err != nil {
					sh.errAt, sh.err = i, err
					break
				}
			}
			sh.bindings, sh.dedupHits = wev.bindings, wev.dedupHits
			if !ev.stream {
				rows = len(sh.rows)
			}
			sp.EndNote("w=%d range=[%d,%d) rows=%d", w, lo, hi, rows)
		}(w, &shards[w], lo, hi)
	}

	res = &Result{}
	if ev.stream {
		msp := ev.trace.StartSpan("merge")
		seen := make(map[string]bool)
		for _, ch := range chans {
			for row := range ch {
				k := row.key()
				if !seen[k] {
					seen[k] = true
					res.Rows = append(res.Rows, row)
				} else {
					ev.dedupHits++
				}
			}
		}
		msp.EndNote("workers=%d rows=%d", workers, len(res.Rows))
	}
	wg.Wait()
	for i := range shards {
		ev.bindings += shards[i].bindings
		ev.dedupHits += shards[i].dedupHits
	}

	// Workers are not cancelled when a sibling fails: each runs its range
	// to completion (or its own first error), so the minimum error index
	// across shards identifies exactly the error serial evaluation
	// reports. Errors are rare; the wasted work is an acceptable price
	// for byte-identical error behavior.
	var firstErr error
	firstAt := -1
	for i := range shards {
		if shards[i].err != nil && (firstAt < 0 || shards[i].errAt < firstAt) {
			firstAt, firstErr = shards[i].errAt, shards[i].err
		}
	}
	if firstErr != nil {
		return nil, true, firstErr
	}

	if !ev.stream {
		msp := ev.trace.StartSpan("merge")
		seen := make(map[string]bool)
		for i := range shards {
			for _, row := range shards[i].rows {
				k := row.key()
				if !seen[k] {
					seen[k] = true
					res.Rows = append(res.Rows, row)
				} else {
					ev.dedupHits++
				}
			}
		}
		msp.EndNote("workers=%d rows=%d", workers, len(res.Rows))
	}
	return res, true, nil
}
