package plan

import (
	"os"
	"sync/atomic"
)

// disabled flips the package-wide default from planned to written-order
// evaluation. It is consulted by lorel.NewEngine, so engines constructed
// after SetEnabled(false) evaluate exactly as before the planner existed;
// engines already constructed can be switched with Engine.SetPlanning.
var disabled atomic.Bool

func init() {
	if v := os.Getenv("REPRO_NOPLANNER"); v != "" && v != "0" {
		disabled.Store(true)
	}
}

// Enabled reports whether new engines plan by default. The default is
// on; the REPRO_NOPLANNER environment variable or a -noplanner command
// flag (via SetEnabled) turns it off — mirroring index.Enabled.
func Enabled() bool { return !disabled.Load() }

// SetEnabled sets the package-wide default and returns the previous value.
func SetEnabled(on bool) (prev bool) { return !disabled.Swap(!on) }
