// Package core ties the reproduction's pieces into the change-management
// system the paper describes: an OEM database under change management,
// whose history is represented as DOEM and queried with Chorel — with both
// of the paper's execution strategies available, snapshot-based change
// capture via OEMdiff, and persistence through the lore store.
package core

import (
	"fmt"

	"repro/internal/change"
	"repro/internal/chorel"
	"repro/internal/doem"
	"repro/internal/lore"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/timestamp"
)

// DB is an OEM database under change management.
type DB struct {
	name string
	cdb  *chorel.DB
}

// Open places an OEM database under change management with an empty
// history. The database is cloned; subsequent changes go through Apply or
// ApplySnapshot. The name is how queries address the database
// ("guide.restaurant" for name "guide").
func Open(name string, initial *oem.Database) *DB {
	return wrap(name, doem.New(initial))
}

// FromHistory opens a database with a pre-existing history, constructing
// D(O, H) per the paper's Section 3.1.
func FromHistory(name string, initial *oem.Database, h change.History) (*DB, error) {
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		return nil, err
	}
	return wrap(name, d), nil
}

func wrap(name string, d *doem.Database) *DB {
	return &DB{name: name, cdb: chorel.New(name, d)}
}

// Name returns the query name of the database.
func (c *DB) Name() string { return c.name }

// DOEM exposes the underlying DOEM database.
func (c *DB) DOEM() *doem.Database { return c.cdb.DOEM() }

// Current returns the current snapshot (live; do not modify).
func (c *DB) Current() *oem.Database { return c.cdb.DOEM().Current() }

// SnapshotAt materializes the database as of time t.
func (c *DB) SnapshotAt(t timestamp.Time) *oem.Database {
	return c.cdb.DOEM().SnapshotAt(t)
}

// Apply records a set of basic change operations at time t.
func (c *DB) Apply(t timestamp.Time, ops change.Set) error {
	if err := c.cdb.DOEM().Apply(t, ops); err != nil {
		return err
	}
	c.cdb.Invalidate()
	return nil
}

// ApplySnapshot infers the changes from the current snapshot to next (which
// must share node identity — e.g. a cooperative wrapper's snapshot) and
// records them at time t. It returns the inferred operations.
func (c *DB) ApplySnapshot(t timestamp.Time, next *oem.Database) (change.Set, error) {
	ops, err := oemdiff.DiffIdentity(c.Current(), next)
	if err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return ops, nil
	}
	if err := c.Apply(t, ops); err != nil {
		return nil, err
	}
	return ops, nil
}

// Update compiles a Lorel-style update statement ("update PATH := V where
// ...", "insert ...", "delete ...") against the current snapshot and
// records the resulting basic change operations at time t — the paper's
// "higher-level changes based on the Lorel update language" (Section 2.1).
// It returns the compiled operations; an empty set records no step.
func (c *DB) Update(t timestamp.Time, stmt string) (change.Set, error) {
	next := c.DOEM().MaxID()
	set, err := c.Engine().Update(stmt, func() oem.NodeID {
		next++
		return next
	})
	if err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return set, nil
	}
	if err := c.Apply(t, set); err != nil {
		return nil, err
	}
	return set, nil
}

// Query evaluates a Chorel (or plain Lorel) query directly on the DOEM
// database — the paper's native strategy.
func (c *DB) Query(src string) (*lorel.Result, error) {
	return c.cdb.Query(src)
}

// QueryTranslated evaluates the query by translating it to Lorel over the
// OEM encoding — the paper's Section 5 strategy. Results reference encoding
// objects; MapToDOEM converts them back.
func (c *DB) QueryTranslated(src string) (*lorel.Result, error) {
	return c.cdb.QueryTranslated(src)
}

// MapToDOEM maps node ids from QueryTranslated results back to DOEM ids.
func (c *DB) MapToDOEM(ids []oem.NodeID) []oem.NodeID { return c.cdb.MapToDOEM(ids) }

// Engine returns the underlying direct-evaluation engine, for registering
// additional databases or polling times.
func (c *DB) Engine() *lorel.Engine { return c.cdb.Engine() }

// History extracts the recorded history H(D).
func (c *DB) History() change.History { return c.cdb.DOEM().ExtractHistory() }

// Save persists the database into a lore store under its name.
func (c *DB) Save(store *lore.Store) error {
	return store.PutDOEM(c.name, c.cdb.DOEM())
}

// Load opens a change-managed database previously saved under name.
func Load(store *lore.Store, name string) (*DB, error) {
	d, err := store.GetDOEM(name)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return wrap(name, d), nil
}
