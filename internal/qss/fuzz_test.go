package qss

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/oemio"
	"repro/internal/timestamp"
)

// FuzzRequestDecode throws arbitrary bytes at the wire decoding paths: a
// Request must either fail to parse or round-trip losslessly, and the
// push-decoding steps a client applies to a Response (timestamp and OEM
// answer parsing) must never panic.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"op":"subscribe","name":"R","source":"guide","source_name":"guide","polling":"select guide.restaurant","filter":"select R.restaurant","freq":"every 1h","resume":true}`))
	f.Add([]byte(`{"op":"list"}`))
	f.Add([]byte(`{"op":"poll","name":"R","time":"1Jan97 02:00:01"}`))
	f.Add([]byte(`{"op":"ping"}`))
	f.Add([]byte(`{"seq":1,"ok":true,"notification":{"subscription":"R","at":"1Jan97","nseq":3,"answer":{"root":1,"nodes":[{"id":1,"value":null}]}}}`))
	f.Add([]byte(`{"seq":0,"ok":true,"health":{"subscription":"R","from":"healthy","to":"degraded","at":"1Jan97","failures":2}}`))
	f.Add([]byte(`{"ok":true,"heartbeat":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"op":`))
	f.Add(bytes.Repeat([]byte("["), 1024))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err == nil {
			out, err := json.Marshal(&req)
			if err != nil {
				t.Fatalf("marshal of decoded request failed: %v", err)
			}
			var again Request
			if err := json.Unmarshal(out, &again); err != nil {
				t.Fatalf("re-decode of %q failed: %v", out, err)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("request round-trip mismatch: %+v vs %+v", req, again)
			}
		}

		var resp Response
		if err := json.Unmarshal(data, &resp); err == nil {
			// Exercise the same parsing a client's read loop applies to
			// pushes; errors are fine, panics are not.
			if n := resp.Notification; n != nil {
				_, _ = timestamp.Parse(n.At)
				_, _ = oemio.Unmarshal(n.Answer)
			}
			if h := resp.Health; h != nil {
				_, _ = timestamp.Parse(h.At)
			}
		}
	})
}

// FuzzReadLine checks the size-limited line reader: it must never panic,
// must never return a line over the limit, and must resynchronize so that
// a well-formed line after arbitrary garbage is still delivered intact.
func FuzzReadLine(f *testing.F) {
	f.Add([]byte("hello\n"), 16)
	f.Add([]byte("too long line ............................\nshort\n"), 16)
	f.Add([]byte(""), 1)
	f.Add(bytes.Repeat([]byte("x"), 9000), 64)

	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max <= 0 || max > 1<<16 {
			max = 64
		}
		sentinel := []byte("{\"op\":\"ping\"}")
		input := append(append([]byte{}, data...), '\n')
		input = append(input, sentinel...)
		input = append(input, '\n')

		br := bufio.NewReaderSize(bytes.NewReader(input), 16)
		sawSentinel := false
		for {
			line, tooLong, err := readLine(br, max)
			if err != nil {
				break
			}
			if tooLong && line != nil {
				t.Fatal("tooLong line returned content")
			}
			if !tooLong && len(line) > max {
				t.Fatalf("returned %d-byte line over %d-byte limit", len(line), max)
			}
			if bytes.Equal(line, sentinel) {
				sawSentinel = true
			}
		}
		// The sentinel fits any max >= len(sentinel) and arrives after the
		// fuzzed garbage's newline, so resync must deliver it.
		if max >= len(sentinel) && !bytes.Contains(data, sentinel) && !sawSentinel {
			t.Fatal("reader failed to resynchronize after garbage")
		}
	})
}
