package lorel

import (
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/value"
)

// updateFixture returns an engine over a plain OEM paper guide plus the db
// itself and an allocator.
func updateFixture(t *testing.T) (*Engine, *oem.Database, *guidegen.PaperIDs, func() oem.NodeID) {
	t.Helper()
	db, ids := guidegen.PaperGuide()
	e := NewEngine()
	e.Register("guide", NewOEMGraph(db))
	next := oem.NodeID(1000)
	return e, db, ids, func() oem.NodeID { next++; return next }
}

func apply(t *testing.T, db *oem.Database, set change.Set) {
	t.Helper()
	if _, err := set.Apply(db); err != nil {
		t.Fatalf("applying compiled set: %v\nset: %s", err, set)
	}
}

func TestUpdateSet(t *testing.T) {
	e, db, ids, _ := updateFixture(t)
	set, err := e.Update(`update guide.restaurant.price := 25 where guide.restaurant.name = "Janta"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("set = %s", set)
	}
	apply(t, db, set)
	if v := db.MustValue(ids.JantaPrice); !v.Equal(value.Int(25)) {
		t.Errorf("Janta price = %s, want 25", v)
	}
	// The uncorrelated restaurant is untouched.
	if v := db.MustValue(ids.Price); !v.Equal(value.Int(10)) {
		t.Errorf("Bangkok price = %s, want 10 (unchanged)", v)
	}
}

func TestUpdateSetAllMatches(t *testing.T) {
	e, db, _, _ := updateFixture(t)
	set, err := e.Update(`update guide.restaurant.price := 0`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both restaurants with a price get updated.
	if c := countKind(set); c.upd != 2 || c.cre != 0 {
		t.Fatalf("set = %s", set)
	}
	apply(t, db, set)
}

func TestInsertLiteral(t *testing.T) {
	e, db, ids, alloc := updateFixture(t)
	set, err := e.Update(`insert guide.restaurant.comment := "try the curry" where guide.restaurant.price < 20`, alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Only Bangkok Cuisine (price 10) qualifies: one creNode + one addArc.
	if c := countKind(set); c.cre != 1 || c.add != 1 {
		t.Fatalf("set = %s", set)
	}
	apply(t, db, set)
	comments := db.OutLabeled(ids.Bangkok, "comment")
	if len(comments) != 1 || !db.MustValue(comments[0].Child).Equal(value.Str("try the curry")) {
		t.Error("comment not inserted under Bangkok Cuisine")
	}
}

func TestInsertComplex(t *testing.T) {
	e, db, ids, alloc := updateFixture(t)
	set, err := e.Update(`insert guide.restaurant.hours := complex where guide.restaurant.name = "Janta"`, alloc)
	if err != nil {
		t.Fatal(err)
	}
	apply(t, db, set)
	hours := db.OutLabeled(ids.Janta, "hours")
	if len(hours) != 1 || !db.MustValue(hours[0].Child).IsComplex() {
		t.Error("complex child not inserted")
	}
}

func TestInsertAtRoot(t *testing.T) {
	e, db, _, alloc := updateFixture(t)
	set, err := e.Update(`insert guide.special := "closed Mondays"`, alloc)
	if err != nil {
		t.Fatal(err)
	}
	apply(t, db, set)
	if got := len(db.OutLabeled(db.Root(), "special")); got != 1 {
		t.Errorf("root special children = %d", got)
	}
}

func TestDelete(t *testing.T) {
	e, db, ids, _ := updateFixture(t)
	set, err := e.Update(`delete guide.restaurant.parking where guide.restaurant.name = "Janta"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := countKind(set); c.rem != 1 {
		t.Fatalf("set = %s", set)
	}
	apply(t, db, set)
	if db.HasArc(ids.Janta, "parking", ids.Parking) {
		t.Error("Janta parking arc survived delete")
	}
	// The shared parking node stays (still reachable from Bangkok).
	if !db.Has(ids.Parking) {
		t.Error("shared node collected though still referenced")
	}
}

func TestDeleteUncorrelatedRemovesAll(t *testing.T) {
	e, db, _, _ := updateFixture(t)
	set, err := e.Update(`delete guide.restaurant.price`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := countKind(set); c.rem != 2 {
		t.Fatalf("set = %s", set)
	}
	apply(t, db, set)
}

func TestUpdateOnDOEMHistory(t *testing.T) {
	// Updates compiled against a DOEM database apply as a history step —
	// the full "higher-level changes" pipeline.
	db, ids := guidegen.PaperGuide()
	d := doem.New(db)
	e := NewEngine()
	e.Register("guide", d)
	set, err := e.Update(`update guide.restaurant.price := 99 where guide.restaurant.name = "Bangkok Cuisine"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(guidegen.T1, set); err != nil {
		t.Fatal(err)
	}
	ups := d.UpdTriples(ids.Price)
	if len(ups) != 1 || !ups[0].New.Equal(value.Int(99)) {
		t.Errorf("upd annotations = %v", ups)
	}
}

func TestUpdateParseErrors(t *testing.T) {
	bad := []string{
		`update guide.restaurant.price 25`,              // missing :=
		`update guide := 1`,                             // no steps
		`frobnicate guide.x := 1`,                       // unknown verb
		`update guide.# := 1`,                           // wildcard target
		`update guide.rest% := 1`,                       // glob target
		`update guide.<add>x := 1`,                      // annotated target
		`delete guide.restaurant.price := 5`,            // delete takes no value
		`update guide.restaurant.price := complex`,      // complex only for insert
		`update guide.restaurant.price := guide.x`,      // non-literal value
		`update guide.restaurant.price := 1 extra junk`, // trailing tokens
	}
	for _, src := range bad {
		if _, err := ParseUpdate(src); err == nil {
			t.Errorf("ParseUpdate(%q) succeeded", src)
		}
	}
}

func TestInsertWithoutAllocator(t *testing.T) {
	e, _, _, _ := updateFixture(t)
	if _, err := e.Update(`insert guide.x := 1`, nil); err == nil {
		t.Error("insert without allocator accepted")
	}
}

type kindCount struct{ cre, upd, add, rem int }

func countKind(set change.Set) kindCount {
	var c kindCount
	for _, op := range set {
		switch op.(type) {
		case change.CreNode:
			c.cre++
		case change.UpdNode:
			c.upd++
		case change.AddArc:
			c.add++
		case change.RemArc:
			c.rem++
		}
	}
	return c
}

func TestCompileUpdateReusable(t *testing.T) {
	// A parsed statement compiles repeatedly (canonicalization must not
	// corrupt it).
	e, _, _, _ := updateFixture(t)
	stmt, err := ParseUpdate(`update guide.restaurant.price := 25 where guide.restaurant.name = "Janta"`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		set, err := e.CompileUpdate(stmt, nil)
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
		if len(set) != 1 {
			t.Fatalf("compile %d: set = %s", i, set)
		}
	}
}

func TestCloneQueryIndependent(t *testing.T) {
	q := mustParse(t, `select N from guide.restaurant R, R.name N where R.<add at T>price = "x" and T > 1Jan97`)
	c := CloneQuery(q)
	if err := Canonicalize(c); err != nil {
		t.Fatal(err)
	}
	// The original remains un-canonicalized and re-canonicalizable.
	if len(q.WhereGens) != 0 {
		t.Error("clone canonicalization leaked into the original")
	}
	if err := Canonicalize(q); err != nil {
		t.Fatal(err)
	}
}
