package qss

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/oemio"
	"repro/internal/timestamp"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// The QSS wire protocol (Figure 7's QSS/QSC split) is JSON-lines over TCP:
// the client sends request objects, the server replies with one response
// per request and pushes notification objects asynchronously.

// Request is a client -> server message.
type Request struct {
	Op         string `json:"op"` // subscribe | unsubscribe | list | poll
	Name       string `json:"name,omitempty"`
	Source     string `json:"source,omitempty"` // server-side source name
	SourceName string `json:"source_name,omitempty"`
	Polling    string `json:"polling,omitempty"`
	Filter     string `json:"filter,omitempty"`
	Freq       string `json:"freq,omitempty"`
	Time       string `json:"time,omitempty"` // manual poll time
}

// Response is a server -> client message. Exactly one of the payload
// fields is set, per the request op; Notification is used for asynchronous
// pushes (Seq 0).
type Response struct {
	Seq          int64             `json:"seq"`
	OK           bool              `json:"ok"`
	Error        string            `json:"error,omitempty"`
	Names        []string          `json:"names,omitempty"`
	Notification *WireNotification `json:"notification,omitempty"`
}

// WireNotification is a notification serialized for the wire.
type WireNotification struct {
	Subscription string          `json:"subscription"`
	At           string          `json:"at"`
	Answer       json.RawMessage `json:"answer"`
}

// Server hosts a Service over TCP. Sources are registered server-side by
// name; clients reference them in subscribe requests.
type Server struct {
	svc     *Service
	sched   *Scheduler
	clock   Clock
	sources map[string]wrapper.Source

	mu     sync.Mutex
	owners map[string]*conn // subscription -> owning connection
	ln     net.Listener
	wg     sync.WaitGroup
}

type conn struct {
	c   net.Conn
	enc *json.Encoder
	mu  sync.Mutex
}

func (c *conn) send(r *Response) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(r)
}

// NewServer builds a QSS server over the given sources, polling with clock.
func NewServer(sources map[string]wrapper.Source, clock Clock) *Server {
	s := &Server{
		clock:   clock,
		sources: sources,
		owners:  make(map[string]*conn),
	}
	s.svc = NewService(s.deliver)
	s.sched = NewScheduler(s.svc, clock, nil)
	return s
}

// Service exposes the underlying service (for in-process use and tests).
func (s *Server) Service() *Service { return s.svc }

// EnableWAL turns on per-subscription write-ahead logging (see
// Service.EnableWAL). Call before serving.
func (s *Server) EnableWAL(dir string, opt *wal.Options) error {
	return s.svc.EnableWAL(dir, opt)
}

// deliver pushes a notification to the owning connection, if any.
func (s *Server) deliver(n Notification) {
	s.mu.Lock()
	owner := s.owners[n.Subscription]
	s.mu.Unlock()
	if owner == nil {
		return
	}
	answer, err := oemio.Marshal(n.Answer)
	if err != nil {
		return
	}
	_ = owner.send(&Response{OK: true, Notification: &WireNotification{
		Subscription: n.Subscription,
		At:           n.At.String(),
		Answer:       answer,
	}})
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(nc)
		}()
	}
}

// Close stops the listener and all pollers.
func (s *Server) Close() {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.sched.StopAll()
	s.wg.Wait()
	s.svc.Close()
}

func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	cn := &conn{c: nc, enc: json.NewEncoder(nc)}
	dec := json.NewDecoder(bufio.NewReader(nc))
	var owned []string
	defer func() {
		// Drop this connection's subscriptions (the client is gone).
		for _, name := range owned {
			s.sched.Stop(name)
			_ = s.svc.Unsubscribe(name)
			s.mu.Lock()
			delete(s.owners, name)
			s.mu.Unlock()
		}
	}()
	var seq int64
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		seq++
		resp := s.dispatch(cn, &req, &owned)
		resp.Seq = seq
		if err := cn.send(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(cn *conn, req *Request, owned *[]string) *Response {
	fail := func(err error) *Response { return &Response{Error: err.Error()} }
	switch req.Op {
	case "subscribe":
		src, ok := s.sources[req.Source]
		if !ok {
			return fail(fmt.Errorf("qss: unknown source %q", req.Source))
		}
		sub := Subscription{
			Name:       req.Name,
			SourceName: req.SourceName,
			Source:     src,
			Polling:    req.Polling,
			Filter:     req.Filter,
		}
		if req.Freq != "" {
			f, err := ParseFreq(req.Freq)
			if err != nil {
				return fail(err)
			}
			sub.Freq = f
		}
		if err := s.svc.Subscribe(sub); err != nil {
			return fail(err)
		}
		s.mu.Lock()
		s.owners[req.Name] = cn
		s.mu.Unlock()
		*owned = append(*owned, req.Name)
		if sub.Freq != nil {
			s.sched.Start(req.Name, sub.Freq)
		}
		return &Response{OK: true}
	case "unsubscribe":
		s.sched.Stop(req.Name)
		if err := s.svc.Unsubscribe(req.Name); err != nil {
			return fail(err)
		}
		s.mu.Lock()
		delete(s.owners, req.Name)
		s.mu.Unlock()
		return &Response{OK: true}
	case "list":
		return &Response{OK: true, Names: s.svc.List()}
	case "poll":
		t := s.clock.Now()
		if req.Time != "" {
			var err error
			t, err = timestamp.Parse(req.Time)
			if err != nil {
				return fail(err)
			}
		}
		if _, err := s.svc.Poll(req.Name, t); err != nil {
			return fail(err)
		}
		return &Response{OK: true}
	default:
		return fail(errors.New("qss: unknown op"))
	}
}
