package index

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/timestamp"
)

// candidateTimes collects instants that exercise every interesting case:
// each recorded step time exactly (the inclusive boundary), one second on
// either side of it, and instants before the first and after the last
// change.
func candidateTimes(d *doem.Database) []timestamp.Time {
	steps := d.Steps()
	var ts []timestamp.Time
	for _, s := range steps {
		ts = append(ts, s, s.Add(-1e9), s.Add(1e9))
	}
	if len(steps) > 0 {
		ts = append(ts, steps[0].Add(-86400e9), steps[len(steps)-1].Add(86400e9))
	} else {
		ts = append(ts, timestamp.MustParse("1Jan97"))
	}
	return ts
}

// randomQuery draws one query from a template pool covering the paths the
// indexes accelerate: exact-label steps, globs, the '#' wildcard, virtual
// <at T> steps, <add/rem at T> arc annotations, <upd ...> matching and
// <cre at T> node annotations.
func randomQuery(rng *rand.Rand, times []timestamp.Time) string {
	at := func() string { return fmt.Sprintf("%q", times[rng.Intn(len(times))].String()) }
	switch rng.Intn(10) {
	case 0:
		return `select guide.restaurant.name`
	case 1:
		return fmt.Sprintf(`select N from guide.restaurant R, R.name N where R.price < %d`, 5+rng.Intn(40))
	case 2:
		return fmt.Sprintf(`select guide.<at %s>restaurant.name`, at())
	case 3:
		return fmt.Sprintf(`select R from guide.<at %s>restaurant R, R.<at %s>price P where P < %d`,
			at(), at(), 5+rng.Intn(40))
	case 4:
		return `select N, T from guide.<add at T>restaurant R, R.name N`
	case 5:
		return `select T from guide.<rem at T>restaurant`
	case 6:
		return `select T, OV, NV from guide.restaurant.price<upd at T from OV to NV>`
	case 7:
		return `select guide.#.name`
	case 8:
		return `select guide.restaurant.commen%`
	default:
		return fmt.Sprintf(`select N, T from guide.restaurant<cre at T> R, R.name N where T >= %s`, at())
	}
}

// TestIndexedEvalParity is the tentpole's property test: over randomized
// histories, indexed and unindexed evaluation (serial and parallel) must
// return byte-identical results on well over 100 randomized queries.
func TestIndexedEvalParity(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 4; seed++ {
		initial, h := guidegen.GenerateHistory(seed, 12, 25, 6)
		d, err := doem.FromHistory(initial, h)
		if err != nil {
			t.Fatalf("seed %d: FromHistory: %v", seed, err)
		}

		raw := lorel.NewEngine()
		raw.Register("guide", d)
		ig := NewGraph(d)
		idx := lorel.NewEngine()
		idx.Register("guide", ig)
		par := lorel.NewEngine()
		par.Register("guide", ig)
		par.SetParallelism(4)

		rng := rand.New(rand.NewSource(seed * 7919))
		times := candidateTimes(d)
		for i := 0; i < 30; i++ {
			q := randomQuery(rng, times)
			want, err := raw.Query(q)
			if err != nil {
				t.Fatalf("seed %d: unindexed %q: %v", seed, q, err)
			}
			got, err := idx.Query(q)
			if err != nil {
				t.Fatalf("seed %d: indexed %q: %v", seed, q, err)
			}
			if want.String() != got.String() {
				t.Errorf("seed %d: indexed result diverges for %q:\nunindexed:\n%s\nindexed:\n%s",
					seed, q, want, got)
			}
			pgot, err := par.Query(q)
			if err != nil {
				t.Fatalf("seed %d: indexed parallel %q: %v", seed, q, err)
			}
			if want.String() != pgot.String() {
				t.Errorf("seed %d: indexed parallel result diverges for %q", seed, q)
			}
			total++
		}
	}
	if total < 100 {
		t.Fatalf("property test ran only %d queries, want >= 100", total)
	}
}

// TestIndexParityAfterApply checks staleness handling: after the database
// mutates underneath the wrapper, queries must reflect the new generation
// with or without an explicit Invalidate call.
func TestIndexParityAfterApply(t *testing.T) {
	for _, explicit := range []bool{false, true} {
		e := guidegen.NewEvolver(11, 10)
		d := doem.New(e.DB)
		ig := NewGraph(d)
		raw := lorel.NewEngine()
		raw.Register("guide", d)
		idx := lorel.NewEngine()
		idx.Register("guide", ig)

		at := timestamp.MustParse("1Jan97")
		for i := 0; i < 8; i++ {
			set := e.Step(5)
			if len(set) > 0 {
				if err := d.Apply(at, set); err != nil {
					t.Fatalf("apply step %d: %v", i, err)
				}
				if explicit {
					ig.Invalidate()
				}
			}
			queries := []string{
				`select guide.restaurant.name`,
				fmt.Sprintf(`select guide.<at %q>restaurant.name`, at.String()),
				`select T from guide.<add at T>restaurant`,
			}
			for _, q := range queries {
				want, err := raw.Query(q)
				if err != nil {
					t.Fatalf("unindexed %q: %v", q, err)
				}
				got, err := idx.Query(q)
				if err != nil {
					t.Fatalf("indexed %q: %v", q, err)
				}
				if want.String() != got.String() {
					t.Fatalf("explicit=%v: stale indexed result after step %d for %q:\nwant:\n%s\ngot:\n%s",
						explicit, i, q, want, got)
				}
			}
			at = at.Add(86400e9)
		}
	}
}

// TestSnapshotMemoization checks the LRU snapshot cache returns consistent
// materializations, invalidates on Apply, and reports hits and misses.
func TestSnapshotMemoization(t *testing.T) {
	initial, h := guidegen.GenerateHistory(3, 10, 12, 5)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	ig := NewGraph(d)
	steps := d.Steps()
	mid := steps[len(steps)/2]

	defer obs.SetEnabled(obs.SetEnabled(true))
	hits0, misses0 := mCacheHits.Value(), mCacheMisses.Value()
	s1 := ig.SnapshotAt(mid)
	if !s1.Equal(d.SnapshotAt(mid)) {
		t.Fatal("memoized snapshot differs from direct materialization")
	}
	s2 := ig.SnapshotAt(mid)
	if s1 != s2 {
		t.Fatal("repeated SnapshotAt did not return the cached database")
	}
	if mCacheMisses.Value() == misses0 {
		t.Error("first SnapshotAt did not count a cache miss")
	}
	if mCacheHits.Value() == hits0 {
		t.Error("second SnapshotAt did not count a cache hit")
	}

	// Mutate: the cache must not serve the old generation.
	last := steps[len(steps)-1].Add(86400e9)
	if err := d.Apply(last, mutationSet(d)); err != nil {
		t.Fatalf("apply: %v", err)
	}
	s3 := ig.SnapshotAt(last)
	if !s3.Equal(d.SnapshotAt(last)) {
		t.Fatal("post-apply snapshot differs from direct materialization")
	}
}

// TestViewCacheEviction fills the view LRU past capacity and checks both
// that evictions are counted and that evicted instants still resolve
// correctly when rebuilt.
func TestViewCacheEviction(t *testing.T) {
	initial, h := guidegen.GenerateHistory(5, 8, 20, 4)
	d, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	ig := NewGraph(d)
	ig.SetCacheSizes(2, 1)
	defer obs.SetEnabled(obs.SetEnabled(true))
	evict0 := mCacheEvictions.Value()
	steps := d.Steps()
	for _, s := range steps {
		ig.viewAt(s)
	}
	if len(steps) > 2 && mCacheEvictions.Value() == evict0 {
		t.Error("filling the view cache past capacity counted no evictions")
	}
	// Re-query an evicted instant and cross-check against the database.
	s0 := steps[0]
	for _, n := range d.AllNodeIDs() {
		var want []string
		for _, a := range d.OutAll(n) {
			if d.ArcLiveAt(a, s0) {
				want = append(want, a.String())
			}
		}
		got := ig.OutAt(n, s0)
		if len(got) != len(want) {
			t.Fatalf("node %s at %s: got %d arcs, want %d", n, s0, len(got), len(want))
		}
		for i, a := range got {
			if a.String() != want[i] {
				t.Fatalf("node %s at %s arc %d: got %s want %s", n, s0, i, a, want[i])
			}
		}
	}
}
