package qss

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/oem"
	"repro/internal/repl"
	"repro/internal/timestamp"
)

// TestIncrementalParityAcrossFailover is the acceptance scenario from
// the issue: with incremental matching on, a replicated primary polls a
// mutating source, dies mid-stream, the follower is promoted and adopts
// the subscription, and polling continues — and the combined
// notification stream is byte-identical to a plain non-incremental
// service fed the exact same source states and poll times. Replica
// promotion loses no notification and invents none.
func TestIncrementalParityAcrossFailover(t *testing.T) {
	src, ids := paperSource(t)

	// Reference: plain service, incremental off.
	ref := NewService(nil)
	ref.SetIncremental(false)
	if err := ref.Subscribe(replTestSub(src)); err != nil {
		t.Fatal(err)
	}

	// Primary and follower, incremental on (the default).
	svcP, nodeP := openReplService(t, t.TempDir(), repl.Config{ID: "p"}, nil)
	defer nodeP.Close()
	if err := nodeP.Promote(); err != nil {
		t.Fatal(err)
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer replLn.Close()
	go nodeP.Serve(replLn)

	svcF, nodeF := openReplService(t, t.TempDir(), repl.Config{
		ID:            "f",
		RedialInitial: 10 * time.Millisecond,
		RedialMax:     100 * time.Millisecond,
	}, nil)
	defer nodeF.Close()
	replAddr := replLn.Addr().String()
	if err := nodeF.Follow(func() (net.Conn, error) { return net.Dial("tcp", replAddr) }); err != nil {
		t.Fatal(err)
	}

	if err := svcP.Subscribe(replTestSub(src)); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	prices := []oem.NodeID{ids.Price, ids.JantaPrice}
	rests := []oem.NodeID{ids.Bangkok, ids.Janta}
	base := timestamp.MustParse("1Jan97")
	var got, want []string

	pollBoth := func(active *Service, round int) {
		t.Helper()
		mutateRandom(t, rng, src, ids, &prices, &rests)
		at := base.Add(time.Duration(round) * time.Hour)
		nAct, errAct := active.Poll("Restaurants", at)
		nRef, errRef := ref.Poll("Restaurants", at)
		if (errAct == nil) != (errRef == nil) {
			t.Fatalf("round %d: err mismatch: active=%v ref=%v", round, errAct, errRef)
		}
		got = append(got, renderNotif(nAct))
		want = append(want, renderNotif(nRef))
	}

	for round := 0; round < 8; round++ {
		pollBoth(svcP, round)
	}

	// The follower must have replicated the whole stream before the
	// primary dies (ack mode none gives no quorum guarantee, so wait).
	qssWaitFor(t, "follower catch-up", func() bool {
		_, times, err := svcF.History("Restaurants")
		return err == nil && len(times) == 8
	})

	// Failover: primary dies, follower is promoted and adopts the
	// subscription (the incremental fingerprint is recomputed on
	// adoption), polling resumes against the same source.
	if err := nodeP.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodeF.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := svcF.Subscribe(replTestSub(src)); err != nil {
		t.Fatalf("adopting on promoted follower: %v", err)
	}
	for round := 8; round < 16; round++ {
		pollBoth(svcF, round)
	}

	for i := range got {
		if got[i] != want[i] {
			t.Errorf("poll %d notification mismatch\nincremental/replicated:\n%s\nreference:\n%s", i, got[i], want[i])
		}
	}
	delivered := 0
	for _, w := range want {
		if w != "<none>" {
			delivered++
		}
	}
	if delivered == 0 {
		t.Error("reference delivered no notifications (test is vacuous)")
	}
}
