package chorel

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/value"
)

func paperDB(t testing.TB) (*DB, *guidegen.PaperIDs) {
	t.Helper()
	o, ids := guidegen.PaperGuide()
	d, err := doem.FromHistory(o, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatal(err)
	}
	return New("guide", d), ids
}

func sortedIDs(ids []oem.NodeID) []oem.NodeID {
	out := append([]oem.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []oem.NodeID) bool {
	a, b = sortedIDs(a), sortedIDs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equivalenceQueries are Chorel queries whose direct and translated
// evaluations must agree on the paper database. The first select column is
// compared (as DOEM node ids for object columns, values otherwise).
var equivalenceQueries = []string{
	`select guide.restaurant`,
	`select guide.restaurant where guide.restaurant.price < 20.5`,
	`select guide.<add>restaurant`,
	`select guide.<add at T>restaurant where T < 4Jan97`,
	`select guide.<rem at T>parking`,
	`select guide.restaurant.<rem at T>parking`,
	`select guide.restaurant<cre at T> where T > 31Dec96`,
	`select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`,
	`select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`,
	`select OV from guide.restaurant.price<upd from OV>`,
	`select N from guide.restaurant R, R.name N where exists P in R.price : P = 20`,
	`select N from guide.restaurant R, R.name N where R.cuisine = "Thai"`,
	`select guide.restaurant.parking.comment`,
	`select R from guide.restaurant R where R.name like "%kata"`,
	`select guide.(restaurant|cafe).name`,
	`select guide.restaurant.(parking.nearby-eats)*.name`,
}

// TestDirectVsTranslatedEquivalence runs every equivalence query through
// both strategies and compares results — the core check that the Section 5
// implementation is faithful to the Section 4 semantics.
func TestDirectVsTranslatedEquivalence(t *testing.T) {
	db, _ := paperDB(t)
	for _, src := range equivalenceQueries {
		direct, err := db.Query(src)
		if err != nil {
			t.Errorf("direct %q: %v", src, err)
			continue
		}
		trans, err := db.QueryTranslated(src)
		if err != nil {
			t.Errorf("translated %q: %v", src, err)
			continue
		}
		if direct.Len() != trans.Len() {
			t.Errorf("%q: direct %d rows, translated %d rows\ndirect:\n%s\ntranslated:\n%s",
				src, direct.Len(), trans.Len(), direct, trans)
			continue
		}
		// Compare first column: node columns map through the encoding.
		dn := direct.FirstColumnNodes()
		tn := db.MapToDOEM(trans.FirstColumnNodes())
		if !equalIDs(dn, tn) {
			t.Errorf("%q: node columns differ: direct %v, translated %v", src, dn, tn)
		}
		// Compare value columns (e.g. annotation variables).
		if len(direct.Rows) > 0 {
			for _, cell := range direct.Rows[0].Cells {
				if cell.IsNode() {
					continue
				}
				dv := direct.Values(cell.Label)
				tv := trans.Values(cell.Label)
				if len(dv) != len(tv) {
					t.Errorf("%q column %q: %d vs %d values", src, cell.Label, len(dv), len(tv))
				}
			}
		}
	}
}

// TestTranslationExample51 checks that translating the paper's Example 4.5
// query produces the structure of Example 5.1: &price-history, &target,
// &add, and &val accesses.
func TestTranslationExample51(t *testing.T) {
	src := `select N from guide.restaurant R, R.name N
		where R.<add at T>price = "moderate" and T >= 1Jan97`
	out, err := TranslateString(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"&price-history", "&target", "&add", "&val", "exists"} {
		if !strings.Contains(out, want) {
			t.Errorf("translated query missing %q:\n%s", want, out)
		}
	}
	// The translated text itself must parse as a valid query.
	if _, err := lorel.Parse(out); err != nil {
		t.Errorf("translated text does not re-parse: %v\n%s", err, out)
	}
	// And it must contain no annotation expressions.
	q, _ := lorel.Parse(out)
	if q.HasAnnotations() {
		t.Error("translated query still contains annotation expressions")
	}
}

// TestTranslatedTextExecutes runs the rendered translation end-to-end on
// the encoding and checks it finds the same answer as the direct path for
// Example 4.4.
func TestTranslatedTextExecutes(t *testing.T) {
	db, _ := paperDB(t)
	src := `select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N
		where T >= 1Jan97 and NV > 15`
	text, err := TranslateString(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := lorel.NewEngine()
	eng.Register("guide", lorel.NewOEMGraph(db.Encoding().DB))
	res, err := eng.Query(text)
	if err != nil {
		t.Fatalf("executing translated text: %v\n%s", err, text)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%s\n%s", res.Len(), text, res)
	}
	// The name column holds the encoding object of the name atom; its value
	// is complex, so read its &val.
	vals := res.Values("new-value")
	if len(vals) != 1 || !vals[0].Equal(value.Int(20)) {
		t.Errorf("new-value = %v, want [20]", vals)
	}
}

// TestUpdTranslation checks the updFun replacement of Section 5.2.
func TestUpdTranslation(t *testing.T) {
	out, err := TranslateString(`select T, OV, NV from guide.restaurant.price<upd at T from OV to NV>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"&upd", "&time", "&ov", "&nv"} {
		if !strings.Contains(out, want) {
			t.Errorf("upd translation missing %q:\n%s", want, out)
		}
	}
}

func TestCreTranslation(t *testing.T) {
	out, err := TranslateString(`select guide.restaurant<cre at T> where T > 31Dec96`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "&cre") {
		t.Errorf("cre translation missing &cre:\n%s", out)
	}
}

func TestUntranslatableConstructs(t *testing.T) {
	cases := []string{
		`select guide.#`,
		`select guide.<at 4Jan97>restaurant`,
		`select guide.restaurant.price<at 4Jan97>`,
	}
	for _, src := range cases {
		if _, err := TranslateString(src); !errors.Is(err, ErrUntranslatable) {
			t.Errorf("%q: err = %v, want ErrUntranslatable", src, err)
		}
	}
}

func TestValueAccessGetsVal(t *testing.T) {
	out, err := TranslateString(`select R from guide.restaurant R where R.price < 20.5`)
	if err != nil {
		t.Fatal(err)
	}
	// The price variable compared against 20.5 must be accessed via &val.
	if !strings.Contains(out, "&val") {
		t.Errorf("value access not rewritten to &val:\n%s", out)
	}
	// The select clause requests the object; the select item must NOT be a
	// &val access.
	if strings.Contains(strings.SplitN(out, "from", 2)[0], "&val") {
		t.Errorf("select-clause object access wrongly rewritten:\n%s", out)
	}
}

// TestQueryAfterApplyInvalidate: modifying the DOEM database and
// invalidating re-encodes.
func TestQueryAfterApplyInvalidate(t *testing.T) {
	db, ids := paperDB(t)
	// Initially one restaurant has an add annotation.
	res, err := db.QueryTranslated(`select guide.<add>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	// Extend history: add another restaurant.
	h := guidegen.PaperHistory(ids)
	_ = h
	newRest := oem.NodeID(600)
	if err := db.DOEM().Apply(guidegen.T3.Add(86400e9), changeSetForTest(newRest, ids.Guide)); err != nil {
		t.Fatal(err)
	}
	db.Invalidate()
	res, err = db.QueryTranslated(`select guide.<add>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("after apply+invalidate rows = %d, want 2", res.Len())
	}
	// Direct path sees it immediately.
	res, err = db.Query(`select guide.<add>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("direct rows = %d, want 2", res.Len())
	}
}

func TestPollTimesForwarded(t *testing.T) {
	db, _ := paperDB(t)
	db.SetPollTimes(nil)
	res, err := db.Query(`select guide.restaurant<cre at T> where T > t[-1]`)
	if err != nil {
		t.Fatal(err)
	}
	// t[-1] = -inf with no polls: every created restaurant matches.
	if res.Len() != 1 {
		t.Errorf("rows = %d, want 1", res.Len())
	}
}

func TestRenderTranslatedNoGens(t *testing.T) {
	q, err := lorel.Parse(`select guide.restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if err := lorel.Canonicalize(q); err != nil {
		t.Fatal(err)
	}
	tq, err := Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTranslated(tq)
	if strings.Contains(out, "exists") {
		t.Errorf("no-where query rendered with exists: %s", out)
	}
	if _, err := lorel.Parse(out); err != nil {
		t.Errorf("rendered query unparseable: %v\n%s", err, out)
	}
}

// TestAnswerWithHistory: a selected object arrives with its &-encoded
// history (the paper's end-of-Section-5.2 remark).
func TestAnswerWithHistory(t *testing.T) {
	db, _ := paperDB(t)
	res, err := db.Query(`select N from guide.restaurant R, R.name N where R.price<upd> > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	ans := db.AnswerWithHistory(res)
	if err := ans.Validate(); err != nil {
		t.Fatalf("answer invalid: %v", err)
	}
	names := ans.OutLabeled(ans.Root(), "name")
	if len(names) != 1 {
		t.Fatalf("name children = %d", len(names))
	}
	nameObj := names[0].Child
	// The name object carries &val with the current value...
	vals := ans.OutLabeled(nameObj, "&val")
	if len(vals) != 1 || !ans.MustValue(vals[0].Child).Equal(value.Str("Bangkok Cuisine")) {
		t.Error("&val missing or wrong on delivered object")
	}
	// ...and a mixed-cells answer wraps rows in complex objects.
	res, err = db.Query(`select N, T from guide.restaurant R, R.name N, R.price<upd at T>`)
	if err != nil {
		t.Fatal(err)
	}
	ans = db.AnswerWithHistory(res)
	rows := ans.OutLabeled(ans.Root(), "answer")
	if len(rows) != 1 {
		t.Fatalf("answer rows = %d", len(rows))
	}
	if len(ans.OutLabeled(rows[0].Child, "update-time")) != 1 {
		t.Error("value cell missing from history answer")
	}
}

// TestAnswerWithHistoryCarriesUpdTrail: selecting the price object itself
// delivers its upd history.
func TestAnswerWithHistoryCarriesUpdTrail(t *testing.T) {
	db, _ := paperDB(t)
	res, err := db.Query(`select P from guide.restaurant.price P where P > 15`)
	if err != nil {
		t.Fatal(err)
	}
	ans := db.AnswerWithHistory(res)
	prices := ans.OutLabeled(ans.Root(), "price")
	if len(prices) != 1 {
		t.Fatalf("price children = %d", len(prices))
	}
	p := prices[0].Child
	upds := ans.OutLabeled(p, "&upd")
	if len(upds) != 1 {
		t.Fatalf("&upd children = %d, want 1 (the 10 -> 20 update)", len(upds))
	}
	ovs := ans.OutLabeled(upds[0].Child, "&ov")
	if len(ovs) != 1 || !ans.MustValue(ovs[0].Child).Equal(value.Int(10)) {
		t.Error("old value missing from delivered history")
	}
}
