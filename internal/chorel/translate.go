// Package chorel implements the Chorel change-query language facilities on
// top of the shared lorel engine: the translation of Chorel queries into
// plain Lorel queries over the OEM encoding of a DOEM database (paper
// Section 5.2), and convenience entry points for both implementation
// strategies the paper discusses —
//
//   - direct: evaluate the Chorel query on the DOEM database itself
//     (lorel.Engine already understands annotation expressions when the
//     registered graph is a *doem.Database);
//
//   - translated: encode the DOEM database as plain OEM (package encoding)
//     and run the translated Lorel query on the encoding, mirroring the
//     paper's "on top of Lore" deployment.
//
// Known semantic divergence between the strategies (inherent to the
// paper's design, not an implementation artifact): selecting an annotation
// data variable (e.g. the NV of an upd annotation) yields *values* under
// direct evaluation but *encoding objects* under translation, so duplicate
// values from distinct annotations deduplicate only in the direct result.
// Selecting the annotation timestamp alongside removes the ambiguity.
package chorel

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/encoding"
	"repro/internal/lorel"
	"repro/internal/obs"
)

// ErrUntranslatable reports a Chorel construct the Section 5.2 translation
// does not cover (wildcards with annotations, virtual <at T> annotations).
var ErrUntranslatable = errors.New("chorel: construct not supported by the Lorel translation")

// Translate rewrites a canonicalized Chorel query into an equivalent plain
// Lorel query over the Section 5.1 OEM encoding:
//
//	X.<add at T>l Y   =>   X.&l-history H, H.&add T, H.&target Y
//	X.<rem at T>l Y   =>   X.&l-history H, H.&rem T, H.&target Y
//	X.l<cre at T> Y   =>   X.l Y, Y.&cre T
//	X.l<upd at T from OV to NV> Y
//	                  =>   X.l Y, Y.&upd U, U.&time T, U.&ov OV, U.&nv NV
//
// and rewrites every value access of an object variable V into V.&val
// (complex encoding objects carry a &val self-loop, so this is safe without
// knowing whether V is atomic).
//
// The input must already be canonicalized (single-step generators); the
// output is a valid Lorel query with no annotation expressions.
func Translate(q *lorel.Query) (*lorel.Query, error) {
	out, _, err := TranslateTraced(q)
	return out, err
}

// RewriteStep records one annotation rewrite performed by the translation:
// which rule fired, the Chorel fragment it consumed, and the Lorel
// generators or expression it produced. The sequence of steps is the
// rewrite trace EXPLAIN prints.
type RewriteStep struct {
	Rule   string // "add-arc", "rem-arc", "cre-node", "upd-node", "objvar-val", "agg-val"
	Before string // source fragment, in Chorel syntax
	After  string // generated fragment, in plain Lorel syntax
}

// TranslateTraced is Translate, additionally returning the rewrite trace.
// On an untranslatable query the steps performed before the failure are
// still returned alongside the error.
func TranslateTraced(q *lorel.Query) (*lorel.Query, []RewriteStep, error) {
	start := obs.Now()
	tr := &translator{objVars: make(map[string]bool)}
	out, err := tr.translate(q)
	mTranslations.Inc()
	mTranslateNs.ObserveSince(start)
	if err != nil {
		if errors.Is(err, ErrUntranslatable) {
			mUntranslatable.Inc()
		}
		return nil, tr.steps, err
	}
	mRewriteSteps.Add(int64(len(tr.steps)))
	return out, tr.steps, nil
}

func (tr *translator) translate(q *lorel.Query) (*lorel.Query, error) {
	out := &lorel.Query{}

	var err error
	out.From, err = tr.generators(q.From)
	if err != nil {
		return nil, err
	}
	out.WhereGens, err = tr.generators(q.WhereGens)
	if err != nil {
		return nil, err
	}
	for _, s := range q.Select {
		e, err := tr.expr(s.Expr, false)
		if err != nil {
			return nil, err
		}
		out.Select = append(out.Select, lorel.SelectItem{Expr: e, Label: s.Label})
	}
	if q.Where != nil {
		out.Where, err = tr.expr(q.Where, true)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

type translator struct {
	objVars map[string]bool // variables ranging over encoding objects
	nfresh  int
	steps   []RewriteStep // rewrite trace, in rule-firing order
}

func (tr *translator) fresh() string {
	tr.nfresh++
	return fmt.Sprintf("_t%d", tr.nfresh)
}

func (tr *translator) record(rule, before, after string) {
	tr.steps = append(tr.steps, RewriteStep{Rule: rule, Before: before, After: after})
}

// renderItems renders generators as "path var, path var" Lorel text.
func renderItems(items []lorel.FromItem) string {
	var b strings.Builder
	for i, g := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", g.Path, g.Var)
	}
	return b.String()
}

func (tr *translator) generators(items []lorel.FromItem) ([]lorel.FromItem, error) {
	var out []lorel.FromItem
	for _, f := range items {
		gs, err := tr.generator(f)
		if err != nil {
			return nil, err
		}
		out = append(out, gs...)
	}
	return out, nil
}

// generator translates one single-step range definition.
func (tr *translator) generator(f lorel.FromItem) ([]lorel.FromItem, error) {
	p := f.Path
	if len(p.Steps) == 0 {
		// Alias: variable kind carries over.
		if tr.objVars[p.Head] {
			tr.objVars[f.Var] = true
		}
		return []lorel.FromItem{f}, nil
	}
	if len(p.Steps) != 1 {
		return nil, fmt.Errorf("chorel: Translate requires a canonicalized query (multi-step path %s)", p)
	}
	step := p.Steps[0]
	if step.Hash {
		if step.Arc != nil || step.Node != nil {
			return nil, fmt.Errorf("%w: annotated wildcard", ErrUntranslatable)
		}
		return nil, fmt.Errorf("%w: '#' wildcards traverse encoding labels; use direct evaluation", ErrUntranslatable)
	}
	if step.Group != nil {
		// Group labels are data labels, which the encoding preserves on
		// current-snapshot arcs; the step passes through unchanged.
		tr.objVars[f.Var] = true
		return []lorel.FromItem{f}, nil
	}
	if (step.Arc != nil && step.Arc.Op == lorel.OpAt) || (step.Node != nil && step.Node.Op == lorel.OpAt) {
		return nil, fmt.Errorf("%w: virtual <at T> annotations", ErrUntranslatable)
	}

	var out []lorel.FromItem
	gen := func(head string, steps string, vr string) {
		out = append(out, lorel.FromItem{
			Path: &lorel.PathExpr{Head: head, Steps: []*lorel.PathStep{{Label: steps, P: step.P}}, P: p.P},
			Var:  vr,
		})
	}

	// The variable holding the target object of this step.
	target := f.Var

	switch {
	case step.Arc == nil:
		// A current-snapshot data step: the label is unchanged in the
		// encoding.
		out = append(out, lorel.FromItem{
			Path: &lorel.PathExpr{Head: p.Head, Steps: []*lorel.PathStep{{
				Label: step.Label, Quoted: step.Quoted, P: step.P,
			}}, P: p.P},
			Var: target,
		})
	case step.Arc.Op == lorel.OpAdd || step.Arc.Op == lorel.OpRem:
		h := tr.fresh()
		gen(p.Head, encoding.HistoryLabel(step.Label), h)
		annLabel := encoding.LabelAdd
		rule := "add-arc"
		if step.Arc.Op == lorel.OpRem {
			annLabel = encoding.LabelRem
			rule = "rem-arc"
		}
		gen(h, annLabel, step.Arc.AtVar)
		gen(h, encoding.LabelTarget, target)
		tr.record(rule, fmt.Sprintf("%s.%s%s %s", p.Head, step.Arc, step.Label, target), renderItems(out))
	default:
		return nil, fmt.Errorf("%w: %s before a label", ErrUntranslatable, step.Arc.Op)
	}
	tr.objVars[target] = true

	// Node annotation on the reached object.
	if step.Node != nil {
		mark := len(out)
		switch step.Node.Op {
		case lorel.OpCre:
			gen(target, encoding.LabelCre, step.Node.AtVar)
			tr.record("cre-node", fmt.Sprintf("%s%s", target, step.Node), renderItems(out[mark:]))
		case lorel.OpUpd:
			u := tr.fresh()
			gen(target, encoding.LabelUpd, u)
			gen(u, encoding.LabelTime, step.Node.AtVar)
			gen(u, encoding.LabelOV, step.Node.FromVar)
			gen(u, encoding.LabelNV, step.Node.ToVar)
			tr.record("upd-node", fmt.Sprintf("%s%s", target, step.Node), renderItems(out[mark:]))
		default:
			return nil, fmt.Errorf("%w: %s after a label", ErrUntranslatable, step.Node.Op)
		}
	}
	return out, nil
}

// expr rewrites an expression; in value position, object variables become
// V.&val accesses. valuePos marks positions whose result is compared or
// computed with (where clauses, arithmetic), as opposed to select items
// that request the object itself.
func (tr *translator) expr(e lorel.Expr, valuePos bool) (lorel.Expr, error) {
	switch x := e.(type) {
	case *lorel.PathValueExpr:
		if len(x.Path.Steps) != 0 {
			return nil, fmt.Errorf("chorel: Translate requires a canonicalized query (path %s in expression)", x.Path)
		}
		if valuePos && tr.objVars[x.Path.Head] {
			tr.record("objvar-val", x.Path.Head, x.Path.Head+"."+encoding.LabelVal)
			return &lorel.PathValueExpr{Path: &lorel.PathExpr{
				Head:  x.Path.Head,
				Steps: []*lorel.PathStep{{Label: encoding.LabelVal, P: x.Path.P}},
				P:     x.Path.P,
			}}, nil
		}
		return x, nil
	case *lorel.ConstExpr, *lorel.TimeRefExpr:
		return e, nil
	case *lorel.BinExpr:
		lval := x.Op != "and" && x.Op != "or"
		l, err := tr.expr(x.L, lval)
		if err != nil {
			return nil, err
		}
		r, err := tr.expr(x.R, lval)
		if err != nil {
			return nil, err
		}
		return &lorel.BinExpr{Op: x.Op, L: l, R: r, P: x.P}, nil
	case *lorel.NotExpr:
		inner, err := tr.expr(x.E, false)
		if err != nil {
			return nil, err
		}
		return &lorel.NotExpr{E: inner, P: x.P}, nil
	case *lorel.AggExpr:
		in, err := tr.plainPath(x.Path)
		if err != nil {
			return nil, err
		}
		if x.Fn == "count" {
			// Counting encoding objects equals counting DOEM objects.
			return &lorel.AggExpr{Fn: x.Fn, Path: in, P: x.P}, nil
		}
		// Value folds must read through &val.
		withVal := &lorel.PathExpr{Head: in.Head, P: in.P}
		withVal.Steps = append(withVal.Steps, in.Steps...)
		withVal.Steps = append(withVal.Steps, &lorel.PathStep{Label: encoding.LabelVal, P: x.P})
		tr.record("agg-val", x.String(), fmt.Sprintf("%s(%s)", x.Fn, withVal))
		return &lorel.AggExpr{Fn: x.Fn, Path: withVal, P: x.P}, nil
	case *lorel.ExistsExpr:
		// The bound variable ranges over encoding objects reached by data
		// labels; annotations inside exists bodies are not canonicalized,
		// so only plain paths are accepted.
		in, err := tr.plainPath(x.In)
		if err != nil {
			return nil, err
		}
		tr.objVars[x.Var] = true
		cond, err := tr.expr(x.Cond, true)
		if err != nil {
			return nil, err
		}
		return &lorel.ExistsExpr{Var: x.Var, In: in, Cond: cond, P: x.P}, nil
	}
	return nil, fmt.Errorf("chorel: cannot translate expression %s", e)
}

func (tr *translator) plainPath(p *lorel.PathExpr) (*lorel.PathExpr, error) {
	for _, s := range p.Steps {
		if s.Arc != nil || s.Node != nil {
			return nil, fmt.Errorf("%w: annotation expressions inside exists bodies", ErrUntranslatable)
		}
		if s.Hash {
			return nil, fmt.Errorf("%w: '#' wildcard inside exists body", ErrUntranslatable)
		}
	}
	return p, nil
}
