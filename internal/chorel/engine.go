package chorel

import (
	"context"

	"repro/internal/doem"
	"repro/internal/encoding"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// DB bundles a DOEM database with both of the paper's execution strategies:
// direct evaluation of Chorel on the annotated graph, and translation to
// Lorel over the Section 5.1 OEM encoding.
type DB struct {
	name   string
	d      *doem.Database
	direct *lorel.Engine

	// indexed is the secondary-index wrapper the direct engine queries
	// through; nil when indexing is off (the engine then sees d itself).
	indexed *index.Graph

	// Lazily built translation-side state; invalidated by Invalidate.
	enc   *encoding.Encoding
	trans *lorel.Engine

	// workers is replayed onto the lazily built translation engine.
	workers int
}

// New wraps a DOEM database for querying under the given name (the head of
// path expressions, e.g. "guide"). When indexing is enabled (the default;
// see index.Enabled) the direct engine queries through an index.Graph.
func New(name string, d *doem.Database) *DB {
	db := &DB{name: name, d: d, direct: lorel.NewEngine(), workers: 1}
	db.SetIndexing(index.Enabled())
	return db
}

// SetIndexing switches the direct-evaluation strategy between the indexed
// wrapper and the raw DOEM database (the -noindex escape hatch).
func (db *DB) SetIndexing(on bool) {
	if on {
		if db.indexed == nil {
			db.indexed = index.NewGraph(db.d)
		}
		db.direct.Register(db.name, db.indexed)
		return
	}
	db.indexed = nil
	db.direct.Register(db.name, db.d)
}

// Indexed reports whether direct evaluation currently runs through the
// secondary indexes.
func (db *DB) Indexed() bool { return db.indexed != nil }

// DOEM returns the underlying DOEM database.
func (db *DB) DOEM() *doem.Database { return db.d }

// Engine returns the direct-evaluation engine (for registering additional
// databases or setting polling times).
func (db *DB) Engine() *lorel.Engine { return db.direct }

// SetPollTimes forwards the QSS polling times to both engines.
func (db *DB) SetPollTimes(times []timestamp.Time) {
	db.direct.SetPollTimes(times)
	if db.trans != nil {
		db.trans.SetPollTimes(times)
	}
}

// SetParallelism forwards the evaluation worker count to both execution
// strategies (n <= 0 selects GOMAXPROCS; see lorel.Engine.SetParallelism).
func (db *DB) SetParallelism(n int) {
	db.direct.SetParallelism(n)
	db.workers = db.direct.Parallelism()
	if db.trans != nil {
		db.trans.SetParallelism(db.workers)
	}
}

// Invalidate discards the cached OEM encoding and the secondary indexes
// after the DOEM database has been modified with Apply.
func (db *DB) Invalidate() {
	db.enc = nil
	db.trans = nil
	if db.indexed != nil {
		db.indexed.Invalidate()
	}
}

// Encoding returns (building if needed) the OEM encoding of the database.
func (db *DB) Encoding() *encoding.Encoding {
	if db.enc == nil {
		db.enc = encoding.Encode(db.d)
		db.trans = lorel.NewEngine()
		db.trans.Register(db.name, lorel.NewOEMGraph(db.enc.DB))
		db.trans.SetPollTimes(nil)
		db.trans.SetParallelism(db.workers)
	}
	return db.enc
}

// Query evaluates a Chorel query directly on the DOEM database.
func (db *DB) Query(src string) (*lorel.Result, error) {
	return db.direct.Query(src)
}

// QueryContext is Query with cancellation.
func (db *DB) QueryContext(ctx context.Context, src string) (*lorel.Result, error) {
	return db.direct.QueryContext(ctx, src)
}

// QueryTranslated translates the query to plain Lorel and evaluates it on
// the OEM encoding — the paper's "on top of Lore" strategy. Node cells in
// the result reference encoding objects; use MapToDOEM to compare against
// direct results.
func (db *DB) QueryTranslated(src string) (*lorel.Result, error) {
	return db.QueryTranslatedContext(context.Background(), src)
}

// QueryTranslatedContext is QueryTranslated with cancellation.
func (db *DB) QueryTranslatedContext(ctx context.Context, src string) (*lorel.Result, error) {
	tr := obs.TraceFrom(ctx)
	sp := tr.StartSpan("parse")
	q, err := lorel.Parse(src)
	if err != nil {
		sp.EndNote("error=parse")
		return nil, err
	}
	if err := lorel.Canonicalize(q); err != nil {
		sp.EndNote("error=canonicalize")
		return nil, err
	}
	sp.End()
	sp = tr.StartSpan("rewrite")
	tq, steps, err := TranslateTraced(q)
	if err != nil {
		sp.EndNote("error=untranslatable")
		return nil, err
	}
	sp.EndNote("steps=%d", len(steps))
	tr.Add("rewrite_steps", int64(len(steps)))
	// The translator clones and rewrites the canonical AST, which drops
	// the plan-cache key; restamp so the translated query plans too.
	lorel.Rekey(tq)
	db.Encoding()
	return db.trans.EvalContext(ctx, tq)
}

// MapToDOEM maps node ids returned by QueryTranslated (encoding objects)
// back to the DOEM objects they encode.
func (db *DB) MapToDOEM(ids []oem.NodeID) []oem.NodeID {
	enc := db.Encoding()
	out := make([]oem.NodeID, 0, len(ids))
	for _, id := range ids {
		if did, ok := enc.Rev[id]; ok {
			out = append(out, did)
		}
	}
	return out
}

// TranslateString parses, canonicalizes and translates a Chorel query and
// renders the resulting Lorel query as text, in the display style of the
// paper's Example 5.1 (hoisted where-clause generators become nested
// exists).
func TranslateString(src string) (string, error) {
	q, err := lorel.Parse(src)
	if err != nil {
		return "", err
	}
	if err := lorel.Canonicalize(q); err != nil {
		return "", err
	}
	tq, err := Translate(q)
	if err != nil {
		return "", err
	}
	return RenderTranslated(tq), nil
}

// RenderTranslated renders a translated query as parseable Lorel text.
// Existential generators are rendered as nested exists quantifiers over the
// where clause — the paper's own rewriting. (The AST form evaluated by
// Eval additionally binds null for empty generators; the textual exists
// form is strictly existential, as in the paper.)
func RenderTranslated(q *lorel.Query) string {
	display := &lorel.Query{Select: q.Select, From: q.From, Where: q.Where}
	if len(q.WhereGens) > 0 {
		inner := q.Where
		if inner == nil {
			inner = &lorel.ConstExpr{Val: value.Bool(true)}
		}
		for i := len(q.WhereGens) - 1; i >= 0; i-- {
			g := q.WhereGens[i]
			inner = &lorel.ExistsExpr{Var: g.Var, In: g.Path, Cond: inner}
		}
		display.Where = inner
	}
	return display.String()
}
