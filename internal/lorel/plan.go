package lorel

import (
	"repro/internal/plan"
)

// This file connects the evaluator to internal/plan: it extracts a
// planner Spec from a canonicalized query, statically validates that the
// query is plannable (see below), probes the registered graphs for
// cardinality statistics, and caches the prepared plan keyed by the
// query's canonical-AST key alongside the stats versions it was costed
// against.
//
// Plannability is a correctness gate, not an optimization: the planned
// executor evaluates pushed conjuncts on partial tuples and skips
// redundant existential extensions, which is only byte-identical to the
// written-order evaluator when (a) no evaluation step can raise a
// runtime error (all of eval.go's error sites are statically decidable
// from the AST and the registered names), (b) select items depend only
// on strict (from-clause) variables, and (c) strict generators depend
// only on strict generators. Queries violating any of these fall back to
// the legacy evaluator, which reproduces their behavior — errors
// included — exactly.

// prepared is one plan-cache entry: the planner's decision plus the
// extraction artifacts the executor needs, pinned to the graphs and
// stats versions it was prepared against.
type prepared struct {
	// plan is nil for queries the validator rejected; the entry is still
	// cached (negatively) so the validation does not rerun every query.
	plan  *plan.Plan
	gens  []FromItem // From ++ WhereGens, original order
	conjs []Expr     // top-level where conjuncts, original order
	// constTimes marks <at T> operands with no variable dependencies;
	// the evaluation memoizes them once instead of re-resolving per
	// binding (constant time-expression hoisting).
	constTimes map[Expr]bool

	// Staleness pins: per consulted database, its identity tag and stats
	// version at prepare time, plus head names that did not resolve
	// (registering one later must invalidate the entry).
	vers    map[string]uint64
	tags    map[string]uintptr
	missing []string
}

// fresh reports whether the entry's pins still hold against the
// evaluation's graph snapshot.
func (pr *prepared) fresh(graphs map[string]Graph) bool {
	for name, tag := range pr.tags {
		g, ok := graphs[name]
		if !ok || graphTag(g) != tag || statsVersionOf(g) != pr.vers[name] {
			return false
		}
	}
	for _, name := range pr.missing {
		if _, ok := graphs[name]; ok {
			return false
		}
	}
	return true
}

// statsVersionOf extracts a change-detection version from a graph: its
// stats version when it serves planner statistics, its database version
// otherwise, zero when it exposes neither (identity-only pinning).
func statsVersionOf(g Graph) uint64 {
	if s, ok := g.(plan.Stats); ok {
		return s.StatsVersion()
	}
	if v, ok := g.(interface{ Version() uint64 }); ok {
		return v.Version()
	}
	return 0
}

// SetPlanning switches this engine between planned and written-order
// evaluation. New engines inherit the package default (plan.Enabled).
func (e *Engine) SetPlanning(on bool) {
	e.mu.Lock()
	e.planning = on
	e.mu.Unlock()
}

// Planning reports whether this engine plans queries.
func (e *Engine) Planning() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.planning
}

// planFor returns the prepared plan for q, consulting and maintaining
// the plan cache. It returns nil when planning is off or q never went
// through canonicalization; it returns an entry with a nil plan when the
// query is not plannable (caller falls back to the legacy evaluator).
func (e *Engine) planFor(ev *evaluation, q *Query) *prepared {
	if q.key == "" || !e.Planning() {
		return nil
	}
	e.planMu.Lock()
	pr, ok := e.plans[q.key]
	e.planMu.Unlock()
	if ok && pr.fresh(ev.graphs) {
		mPlanCacheHits.Inc()
		return pr
	}
	if ok {
		mPlanReprepares.Inc()
	} else {
		mPlanCacheMisses.Inc()
	}
	pr = prepareQuery(q, ev.graphs)
	if pr.plan == nil {
		mPlanUnplannable.Inc()
	}
	e.planMu.Lock()
	if len(e.plans) >= cacheLimit {
		e.plans = make(map[string]*prepared)
	}
	e.plans[q.key] = pr
	e.planMu.Unlock()
	return pr
}

// PlanDescription parses src (through the parse cache) and returns the
// planner's EXPLAIN lines for it against the currently registered
// graphs: chosen join order, pushed predicates, and estimated
// cardinalities. It never evaluates the query.
func (e *Engine) PlanDescription(src string) ([]string, error) {
	q, err := e.cachedQuery(nil, src)
	if err != nil {
		return nil, err
	}
	if !e.Planning() {
		return []string{"planner: disabled (-noplanner / REPRO_NOPLANNER); written-order evaluation"}, nil
	}
	ev := e.newEvaluation(nil)
	pr := e.planFor(ev, q)
	if pr == nil || pr.plan == nil {
		return []string{"planner: query not plannable; canonical written-order evaluation"}, nil
	}
	return pr.plan.Notes, nil
}

// prepareQuery extracts, validates and plans one canonical query against
// a graph snapshot.
func prepareQuery(q *Query, graphs map[string]Graph) *prepared {
	b := &specBuilder{
		graphs: graphs,
		varGen: make(map[string]int),
		vers:   make(map[string]uint64),
		tags:   make(map[string]uintptr),
		consts: make(map[Expr]bool),
	}
	pr := &prepared{
		gens:       append(append([]FromItem{}, q.From...), q.WhereGens...),
		constTimes: b.consts,
		vers:       b.vers,
		tags:       b.tags,
	}
	spec, ok := b.build(q, pr.gens, len(q.From))
	pr.missing = b.missing
	if !ok {
		return pr
	}
	pr.plan = plan.Prepare(spec)
	pr.conjs = conjuncts(q.Where)
	return pr
}

// conjuncts flattens the top-level "and" tree of a where clause.
func conjuncts(where Expr) []Expr {
	if where == nil {
		return nil
	}
	var out []Expr
	var flatten func(Expr)
	flatten = func(e Expr) {
		if x, ok := e.(*BinExpr); ok && x.Op == "and" {
			flatten(x.L)
			flatten(x.R)
			return
		}
		out = append(out, e)
	}
	flatten(where)
	return out
}

// specBuilder walks a canonical query, building the planner Spec and
// rejecting anything the planned executor cannot reproduce exactly.
type specBuilder struct {
	graphs  map[string]Graph
	varGen  map[string]int // variable -> generator index binding it
	genDB   []string       // per generator: root database name ("" unknown)
	vers    map[string]uint64
	tags    map[string]uintptr
	missing []string
	consts  map[Expr]bool
	statsCh map[string]plan.Stats
}

func (b *specBuilder) build(q *Query, gens []FromItem, nStrict int) (*plan.Spec, bool) {
	b.genDB = make([]string, len(gens))
	spec := &plan.Spec{}

	for i, g := range gens {
		gs, ok := b.genSpec(i, g, i < nStrict)
		if !ok {
			return nil, false
		}
		spec.Gens = append(spec.Gens, gs)
	}
	// Strict generators must not depend on existential ones: the planned
	// executor binds the whole strict block before searching extensions.
	for i := 0; i < nStrict; i++ {
		for _, d := range spec.Gens[i].Deps {
			if d >= nStrict {
				return nil, false
			}
		}
	}

	for _, c := range conjuncts(q.Where) {
		ck := &exprCheck{b: b}
		ck.predicate(c, nil)
		if !ck.ok() {
			return nil, false
		}
		spec.Conjs = append(spec.Conjs, plan.ConjSpec{
			Text: c.String(),
			Deps: ck.depList(),
			Kind: predKind(c),
		})
	}

	// Select items must be error-free and reachable from strict
	// variables alone (the canonicalizer guarantees this for parsed
	// queries; programmatically built ones are re-checked).
	for _, s := range q.Select {
		ck := &exprCheck{b: b}
		ck.operand(s.Expr, nil)
		if !ck.ok() {
			return nil, false
		}
		for _, d := range ck.depList() {
			if d >= nStrict {
				return nil, false
			}
		}
	}
	return spec, true
}

// genSpec classifies one canonical generator and resolves its deps and
// cardinalities; ok=false rejects the query.
func (b *specBuilder) genSpec(i int, g FromItem, strict bool) (plan.GenSpec, bool) {
	gs := plan.GenSpec{Var: g.Var, Source: g.Path.String(), Strict: strict}
	p := g.Path
	if g.Var == "" || len(p.Steps) > 1 {
		return gs, false
	}
	deps := make(map[int]bool)

	// Head: an earlier generator's variable or a registered database.
	if gi, ok := b.varGen[p.Head]; ok {
		deps[gi] = true
		b.genDB[i] = b.genDB[gi]
	} else if _, ok := b.graphs[p.Head]; ok {
		b.recordDB(p.Head)
		b.genDB[i] = p.Head
		gs.Root = true
	} else {
		b.missing = append(b.missing, p.Head)
		return gs, false
	}

	label := ""
	if len(p.Steps) == 0 {
		gs.Kind = plan.KindHead
	} else {
		s := p.Steps[0]
		switch {
		case s.Group != nil, s.Hash:
			// The evaluator silently ignores annotations on group and
			// subtree steps; keep that quirk on the legacy path.
			if s.Arc != nil || s.Node != nil {
				return gs, false
			}
			gs.Kind = plan.KindGroup
			if s.Hash {
				gs.Kind = plan.KindHash
			}
		case s.Arc == nil:
			gs.Kind = plan.KindGlob
			if exactLabel(s) {
				gs.Kind = plan.KindLabel
				label = s.Label
			}
		case s.Arc.Op == OpAdd || s.Arc.Op == OpRem:
			gs.Kind = plan.KindAnnot
			if exactLabel(s) {
				label = s.Label
			}
		case s.Arc.Op == OpAt:
			gs.Kind = plan.KindAt
			if exactLabel(s) {
				label = s.Label
			}
		default:
			return gs, false // <cre>/<upd> before a label: evaluation error
		}
		if s.Arc != nil {
			if s.Arc.Op == OpAt {
				if !b.atExpr(s.Arc.AtExpr, deps) {
					return gs, false
				}
			} else if !b.bindVar(s.Arc.AtVar, i) {
				return gs, false
			}
		}
		if s.Node != nil && s.Group == nil && !s.Hash {
			switch s.Node.Op {
			case OpCre:
				if !b.bindVar(s.Node.AtVar, i) {
					return gs, false
				}
			case OpUpd:
				if !b.bindVar(s.Node.AtVar, i) || !b.bindVar(s.Node.FromVar, i) || !b.bindVar(s.Node.ToVar, i) {
					return gs, false
				}
			case OpAt:
				if !b.atExpr(s.Node.AtExpr, deps) {
					return gs, false
				}
			default:
				return gs, false // <add>/<rem> after a label: evaluation error
			}
		}
	}

	// The range variable itself binds last (its head was resolved above).
	if _, clash := b.varGen[g.Var]; clash {
		return gs, false
	}
	if _, clash := b.graphs[g.Var]; clash {
		return gs, false
	}
	b.varGen[g.Var] = i

	for d := range deps {
		gs.Deps = append(gs.Deps, d)
	}
	sortInts(gs.Deps)
	gs.Card = plan.CardOf(b.statsFor(b.genDB[i]), label)
	return gs, true
}

// atExpr validates an <at T> operand, collects its generator deps, and
// marks it for constant hoisting when it has none.
func (b *specBuilder) atExpr(ex Expr, deps map[int]bool) bool {
	if ex == nil {
		return false
	}
	ck := &exprCheck{b: b}
	ck.operand(ex, nil)
	if !ck.ok() {
		return false
	}
	if len(ck.deps) == 0 {
		b.consts[ex] = true
	}
	for d := range ck.deps {
		deps[d] = true
	}
	return true
}

// bindVar registers an annotation variable bound by generator i. Empty
// names are fine (unbound); duplicates and database-name clashes reject
// the query (the legacy evaluator's env chain shadows, which reordering
// could not reproduce).
func (b *specBuilder) bindVar(v string, i int) bool {
	if v == "" {
		return true
	}
	if _, dup := b.varGen[v]; dup {
		return false
	}
	if _, clash := b.graphs[v]; clash {
		return false
	}
	b.varGen[v] = i
	return true
}

func (b *specBuilder) recordDB(name string) {
	if _, ok := b.tags[name]; ok {
		return
	}
	g := b.graphs[name]
	b.tags[name] = graphTag(g)
	b.vers[name] = statsVersionOf(g)
}

func (b *specBuilder) statsFor(db string) plan.Stats {
	if db == "" {
		return nil
	}
	if st, ok := b.statsCh[db]; ok {
		return st
	}
	st, _ := b.graphs[db].(plan.Stats)
	if b.statsCh == nil {
		b.statsCh = make(map[string]plan.Stats)
	}
	b.statsCh[db] = st
	return st
}

// predKind classifies a conjunct's top operator for selectivity.
func predKind(e Expr) plan.PredKind {
	x, ok := e.(*BinExpr)
	if !ok {
		return plan.PredOther
	}
	switch x.Op {
	case "=":
		return plan.PredEq
	case "!=", "<", "<=", ">", ">=":
		return plan.PredRange
	case "like":
		return plan.PredLike
	}
	return plan.PredOther
}

// exprCheck validates an expression against eval.go's runtime error
// sites and collects the generators whose variables it references. Every
// error the evaluator can raise — unknown names, non-predicate operators
// in predicate position, misplaced annotations — is decidable from the
// AST and the name scopes, so an expression that passes here cannot fail
// at runtime in any environment binding the same variables.
type exprCheck struct {
	b      *specBuilder
	deps   map[int]bool
	failed bool
}

func (c *exprCheck) fail() { c.failed = true }

func (c *exprCheck) ok() bool { return !c.failed }

func (c *exprCheck) depList() []int {
	out := make([]int, 0, len(c.deps))
	for d := range c.deps {
		out = append(out, d)
	}
	sortInts(out)
	return out
}

// operand validates e in value position (evalOperand).
func (c *exprCheck) operand(e Expr, locals map[string]bool) {
	switch x := e.(type) {
	case *ConstExpr, *TimeRefExpr:
	case *PathValueExpr:
		c.path(x.Path, locals)
	case *AggExpr:
		c.path(x.Path, locals)
	case *BinExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			c.operand(x.L, locals)
			c.operand(x.R, locals)
		default:
			c.predicate(e, locals)
		}
	case *NotExpr, *ExistsExpr:
		c.predicate(e, locals)
	default:
		c.fail()
	}
}

// predicate validates e in boolean position (evalBool).
func (c *exprCheck) predicate(e Expr, locals map[string]bool) {
	switch x := e.(type) {
	case *BinExpr:
		switch x.Op {
		case "and", "or":
			c.predicate(x.L, locals)
			c.predicate(x.R, locals)
		case "=", "!=", "<", "<=", ">", ">=", "like":
			c.operand(x.L, locals)
			c.operand(x.R, locals)
		default:
			c.fail() // arithmetic in predicate position: evaluation error
		}
	case *NotExpr:
		c.predicate(x.E, locals)
	case *ExistsExpr:
		inner := c.path(x.In, locals)
		inner = withLocal(inner, x.Var)
		c.predicate(x.Cond, inner)
	case *ConstExpr, *TimeRefExpr:
	case *PathValueExpr:
		c.path(x.Path, locals)
	default:
		c.fail() // aggregates and unknown nodes are not predicates
	}
}

// path validates an expression-embedded path and returns the local scope
// extended with the annotation variables the path binds along the way.
func (c *exprCheck) path(p *PathExpr, locals map[string]bool) map[string]bool {
	if locals[p.Head] {
		// Locally bound (exists variable or annotation variable).
	} else if gi, ok := c.b.varGen[p.Head]; ok {
		if c.deps == nil {
			c.deps = make(map[int]bool)
		}
		c.deps[gi] = true
	} else if _, ok := c.b.graphs[p.Head]; ok {
		c.b.recordDB(p.Head)
	} else {
		c.b.missing = append(c.b.missing, p.Head)
		c.fail()
		return locals
	}
	for _, s := range p.Steps {
		if s.Group != nil || s.Hash {
			if s.Arc != nil || s.Node != nil {
				c.fail() // evaluator ignores these; keep on legacy path
				return locals
			}
			continue
		}
		if s.Arc != nil {
			switch s.Arc.Op {
			case OpAdd, OpRem:
				locals = withLocal(locals, s.Arc.AtVar)
			case OpAt:
				c.operand(s.Arc.AtExpr, locals)
			default:
				c.fail() // <cre>/<upd> before a label
				return locals
			}
		}
		if s.Node != nil {
			switch s.Node.Op {
			case OpCre:
				locals = withLocal(locals, s.Node.AtVar)
			case OpUpd:
				locals = withLocal(locals, s.Node.AtVar)
				locals = withLocal(locals, s.Node.FromVar)
				locals = withLocal(locals, s.Node.ToVar)
			case OpAt:
				c.operand(s.Node.AtExpr, locals)
			default:
				c.fail() // <add>/<rem> after a label
				return locals
			}
		}
	}
	return locals
}

// withLocal copy-extends a local scope (scopes are tiny; copying keeps
// sibling branches independent).
func withLocal(locals map[string]bool, v string) map[string]bool {
	if v == "" {
		return locals
	}
	next := make(map[string]bool, len(locals)+1)
	for k := range locals {
		next[k] = true
	}
	next[v] = true
	return next
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
