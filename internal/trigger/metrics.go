package trigger

import "repro/internal/obs"

// Counters on the default registry (see docs/observability.md).
var (
	// mApplies counts change sets applied through Manager.Apply,
	// including cascaded sets.
	mApplies = obs.NewCounter("trigger_applies_total")
	// mEvaluated counts trigger queries actually evaluated.
	mEvaluated = obs.NewCounter("trigger_evaluated_total")
	// mSuppressed counts evaluations skipped by incremental matching.
	mSuppressed = obs.NewCounter("trigger_suppressed_total")
	// mFired counts trigger activations (non-empty results).
	mFired = obs.NewCounter("trigger_fired_total")
)
