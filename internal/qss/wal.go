package qss

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/wal"
)

// Write-ahead logging of subscription state. With EnableWAL, every poll
// appends one record — the polling time, the inferred change set, the remap
// entries allocated while packaging, and the id high-water mark — to a
// per-subscription log. Re-subscribing under the same name replays the log
// (on top of the last checkpoint, if any), so a QSS restart recovers the
// full subscription history without re-polling the sources.

const subWALExt = ".subwal"

// maxRemapDelta bounds the remap-addition count a decoder will allocate
// for, so corrupt records cannot demand absurd allocations.
const maxRemapDelta = 1 << 24

// remapPair is one source-id-to-packaged-id mapping added during a poll.
type remapPair struct {
	Src oem.NodeID
	ID  oem.NodeID
}

// EnableWAL turns on write-ahead logging under dir for all subscriptions
// registered afterwards. It must be called before Subscribe; opt may be
// nil for default log options.
func (s *Service) EnableWAL(dir string, opt *wal.Options) error {
	if dir == "" {
		return errors.New("qss: WAL needs a directory")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.subs) > 0 {
		return errors.New("qss: EnableWAL must precede Subscribe")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("qss: %w", err)
	}
	if opt == nil {
		opt = &wal.Options{}
	}
	s.walDir, s.walOpt = dir, opt
	return nil
}

// Close closes all subscription logs and segment stores. Subscriptions
// remain registered but further polls of persisted subscriptions will
// fail; Close is for shutdown.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, st := range s.subs {
		st.mu.Lock()
		if st.log != nil {
			if err := st.log.Close(); err != nil && first == nil {
				first = err
			}
			st.log = nil
		}
		if st.seg != nil {
			if err := st.seg.Close(); err != nil && first == nil {
				first = err
			}
			st.seg = nil
		}
		st.mu.Unlock()
	}
	return first
}

// attachLog opens (or resumes) the subscription's log and replays any
// recorded history into st. Caller holds s.mu; st is not yet published.
func (s *Service) attachLog(st *subState, name string) error {
	if strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("qss: subscription name %q not usable as a log directory", name)
	}
	l, err := wal.Open(filepath.Join(s.walDir, name+subWALExt), s.walOpt)
	if err != nil {
		return fmt.Errorf("qss: opening log: %w", err)
	}
	if err := st.recoverFromLog(l); err != nil {
		l.Close()
		return err
	}
	st.log = l
	return nil
}

// recoverFromLog rebuilds subscription state from a checkpoint plus the
// poll records after it.
func (st *subState) recoverFromLog(l *wal.Log) error {
	if ck, _, ok := l.LastCheckpoint(); ok {
		if err := st.restoreState(ck); err != nil {
			return fmt.Errorf("qss: recovering checkpoint: %w", err)
		}
	}
	return l.Replay(func(seq uint64, payload []byte) error {
		t, ops, added, nextID, err := decodePollRecord(payload)
		if err != nil {
			return fmt.Errorf("qss: log record %d: %w", seq, err)
		}
		// Mirror Poll's state transitions: remap additions happen while
		// packaging (before the diff is applied), pruning after.
		for _, p := range added {
			st.remap[p.Src] = p.ID
		}
		if len(ops) > 0 {
			if err := st.d.Apply(t, ops); err != nil {
				return fmt.Errorf("qss: replaying log record %d: %w", seq, err)
			}
			st.pruneRemap()
		}
		st.pollTimes = append(st.pollTimes, t)
		st.nextID = nextID
		return nil
	})
}

// appendPollRecord encodes one poll: time, change set, remap additions,
// and the packaged-id high-water mark.
func appendPollRecord(dst []byte, t timestamp.Time, ops change.Set, added []remapPair, nextID oem.NodeID) []byte {
	dst = change.AppendTime(dst, t)
	dst = change.AppendSet(dst, ops)
	dst = binary.AppendUvarint(dst, uint64(len(added)))
	for _, p := range added {
		dst = binary.AppendUvarint(dst, uint64(p.Src))
		dst = binary.AppendUvarint(dst, uint64(p.ID))
	}
	dst = binary.AppendUvarint(dst, uint64(nextID))
	return dst
}

func decodePollRecord(data []byte) (timestamp.Time, change.Set, []remapPair, oem.NodeID, error) {
	fail := func(err error) (timestamp.Time, change.Set, []remapPair, oem.NodeID, error) {
		return timestamp.Time{}, nil, nil, 0, err
	}
	t, n, err := change.DecodeTime(data)
	if err != nil {
		return fail(err)
	}
	data = data[n:]
	ops, n, err := change.DecodeSet(data)
	if err != nil {
		return fail(err)
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 || count > maxRemapDelta {
		return fail(fmt.Errorf("%w: remap delta", change.ErrCorrupt))
	}
	data = data[n:]
	var added []remapPair
	for i := uint64(0); i < count; i++ {
		src, n := binary.Uvarint(data)
		if n <= 0 {
			return fail(fmt.Errorf("%w: remap source", change.ErrCorrupt))
		}
		data = data[n:]
		id, n := binary.Uvarint(data)
		if n <= 0 {
			return fail(fmt.Errorf("%w: remap target", change.ErrCorrupt))
		}
		data = data[n:]
		added = append(added, remapPair{Src: oem.NodeID(src), ID: oem.NodeID(id)})
	}
	nextID, n := binary.Uvarint(data)
	if n <= 0 {
		return fail(fmt.Errorf("%w: next id", change.ErrCorrupt))
	}
	if len(data[n:]) != 0 {
		return fail(fmt.Errorf("%w: %d trailing bytes in poll record", change.ErrCorrupt, len(data[n:])))
	}
	return t, ops, added, oem.NodeID(nextID), nil
}
