package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoints. A checkpoint is a single file holding an opaque snapshot
// payload plus the sequence number of the last record the snapshot covers.
// It is written atomically (temp file + fsync + rename + directory fsync),
// so a crash leaves either the old or the new checkpoint, never a torn one.
// After a checkpoint, segments containing only covered records are deleted:
// the log's length is bounded by the data written since the last
// checkpoint, which is the paper's Section 6.1 space-for-accuracy trade in
// log-compaction form.
//
// Layout: "WALCKPT1" magic, uvarint covered sequence, payload, and a
// trailing CRC-32C of everything before it (4 bytes LE).

const checkpointName = "CHECKPOINT"

var checkpointMagic = []byte("WALCKPT1")

// Checkpoint atomically installs payload as the snapshot covering every
// record with sequence <= upTo, then deletes fully covered segments.
func (l *Log) Checkpoint(payload []byte, upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if upTo > l.seq {
		return fmt.Errorf("wal: checkpoint at %d beyond last record %d", upTo, l.seq)
	}
	if upTo < l.ckptSeq {
		return fmt.Errorf("wal: checkpoint at %d behind existing checkpoint %d", upTo, l.ckptSeq)
	}
	if err := l.installCheckpointLocked(payload, upTo); err != nil {
		return err
	}
	mCheckpoints.Inc()
	return l.compactLocked()
}

// installCheckpointLocked atomically writes the checkpoint file and updates
// the in-memory checkpoint state. The caller holds l.mu.
func (l *Log) installCheckpointLocked(payload []byte, upTo uint64) error {
	buf := append([]byte(nil), checkpointMagic...)
	buf = binary.AppendUvarint(buf, upTo)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	path := filepath.Join(l.dir, checkpointName)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.ckptSeq = upTo
	l.ckptData = append([]byte(nil), payload...)
	l.hasCkpt = true
	return nil
}

// compactLocked removes segments whose every record is covered by the
// checkpoint. The caller holds l.mu.
func (l *Log) compactLocked() error {
	// If even the newest records are covered, retire the active segment so
	// it can be deleted too; the next append starts a fresh one.
	if l.active != nil && l.seq <= l.ckptSeq {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
		l.active, l.activePath, l.activeSize = nil, "", 0
	}
	paths, firsts, err := l.listSegments()
	if err != nil {
		return err
	}
	removed := false
	for i, path := range paths {
		if path == l.activePath {
			continue
		}
		// The last record of segment i is just before the next segment's
		// first, or the log's last record for the final segment.
		last := l.seq
		if i+1 < len(firsts) {
			last = firsts[i+1] - 1
		}
		if last <= l.ckptSeq {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: compact: %w", err)
			}
			removed = true
		}
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// LastCheckpoint returns the current checkpoint payload and the sequence it
// covers. ok is false when the log has no checkpoint.
func (l *Log) LastCheckpoint() (payload []byte, upTo uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.hasCkpt {
		return nil, 0, false
	}
	return append([]byte(nil), l.ckptData...), l.ckptSeq, true
}

// loadCheckpoint reads and validates the checkpoint file, if present.
func (l *Log) loadCheckpoint() error {
	data, err := os.ReadFile(filepath.Join(l.dir, checkpointName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	n := len(data)
	if n < len(checkpointMagic)+1+4 || string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return fmt.Errorf("wal: malformed checkpoint file")
	}
	body, sum := data[:n-4], binary.LittleEndian.Uint32(data[n-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	rest := body[len(checkpointMagic):]
	seq, vn := binary.Uvarint(rest)
	if vn <= 0 {
		return fmt.Errorf("wal: malformed checkpoint sequence")
	}
	l.ckptSeq = seq
	l.ckptData = append([]byte(nil), rest[vn:]...)
	l.hasCkpt = true
	return nil
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
