package oem

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Preorder visits nodes reachable from start in depth-first preorder,
// following arcs in insertion order and visiting each node once (cycles are
// therefore safe). The visit function may return false to prune the subtree
// below a node.
func (db *Database) Preorder(start NodeID, visit func(n NodeID) bool) {
	seen := make(map[NodeID]bool)
	var walk func(n NodeID)
	walk = func(n NodeID) {
		if seen[n] {
			return
		}
		seen[n] = true
		if !visit(n) {
			return
		}
		for _, a := range db.out[n] {
			walk(a.Child)
		}
	}
	walk(start)
}

// Closure returns the set of nodes reachable from any of the given roots,
// i.e. the recursive subobject closure used when packaging query results
// (paper Section 6: "the result of a polling query includes recursively all
// subobjects of the objects in the query answer").
func (db *Database) Closure(roots []NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	stack := append([]NodeID(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range db.out[n] {
			if !seen[a.Child] {
				seen[a.Child] = true
				stack = append(stack, a.Child)
			}
		}
	}
	return seen
}

// CopySubgraph packages the subobject closure of roots as a new database:
// a fresh root with an arcLabel arc to (the copy of) each given root, node
// ids remapped. It returns the new database and the old-to-new id mapping.
// If remap is non-nil it seeds (and extends) the mapping, so successive
// packagings of overlapping results assign stable ids — QSS relies on this
// to run identity-based diffs over polling results (paper Section 6).
func (db *Database) CopySubgraph(roots []NodeID, arcLabel string, remap map[NodeID]NodeID) (*Database, map[NodeID]NodeID) {
	if remap == nil {
		remap = make(map[NodeID]NodeID)
	}
	out := New()
	// Allocate ids for every node in the closure, honouring the seed map.
	closure := db.Closure(roots)
	ids := make([]NodeID, 0, len(closure))
	for id := range closure {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// First pass: ensure seeded ids exist; nextID must clear them all.
	maxSeed := NodeID(0)
	for _, id := range ids {
		if nid, ok := remap[id]; ok && nid > maxSeed {
			maxSeed = nid
		}
	}
	for old, nid := range remap {
		_ = old
		if nid > maxSeed {
			maxSeed = nid
		}
	}
	if maxSeed >= out.nextID {
		out.nextID = maxSeed + 1
	}
	for _, id := range ids {
		v := db.values[id]
		if nid, ok := remap[id]; ok {
			if err := out.CreateNodeWithID(nid, v); err != nil {
				panic(fmt.Sprintf("oem: CopySubgraph seed collision: %v", err))
			}
		} else {
			remap[id] = out.CreateNode(v)
		}
	}
	for _, id := range ids {
		for _, a := range db.out[id] {
			if closure[a.Child] {
				if err := out.AddArc(remap[a.Parent], a.Label, remap[a.Child]); err != nil {
					panic(err)
				}
			}
		}
	}
	for _, r := range roots {
		if err := out.AddArc(out.Root(), arcLabel, remap[r]); err != nil {
			panic(err)
		}
	}
	return out, remap
}

// Fingerprint computes a structural hash for every node using iterated
// Weisfeiler-Lehman style refinement: a node's hash combines its value and
// the multiset of (label, child hash) pairs, iterated to a fixpoint bound.
// Two isomorphic databases produce equal root fingerprints; the converse
// holds for trees and, in practice, for the DAGs this system manipulates.
func (db *Database) Fingerprint() map[NodeID]uint64 {
	h := make(map[NodeID]uint64, len(db.values))
	for id, v := range db.values {
		h[id] = hashString(v.String())
	}
	// log2(|N|)+2 rounds suffice to propagate across any simple path.
	rounds := 2
	for n := len(db.values); n > 1; n /= 2 {
		rounds++
	}
	for r := 0; r < rounds; r++ {
		next := make(map[NodeID]uint64, len(h))
		for id := range db.values {
			arcs := db.out[id]
			parts := make([]uint64, 0, len(arcs))
			for _, a := range arcs {
				parts = append(parts, hashString(a.Label)*31+h[a.Child])
			}
			sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
			x := h[id]
			for _, p := range parts {
				x = x*1000003 + p
			}
			next[id] = x
		}
		h = next
	}
	return h
}

// Isomorphic reports whether two databases are isomorphic as rooted labeled
// graphs with node values, using fingerprint comparison (exact on trees;
// bisimulation-grade on graphs with cycles).
func Isomorphic(a, b *Database) bool {
	if a.NumNodes() != b.NumNodes() || a.NumArcs() != b.NumArcs() {
		return false
	}
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa[a.root] != fb[b.root] {
		return false
	}
	return multisetEqual(fa, fb)
}

func multisetEqual(a, b map[NodeID]uint64) bool {
	count := make(map[uint64]int, len(a))
	for _, h := range a {
		count[h]++
	}
	for _, h := range b {
		count[h]--
		if count[h] < 0 {
			return false
		}
	}
	return true
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
