package qss

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/timestamp"
)

// Clock abstracts time so schedulers can run against the real clock or a
// simulated one in tests and examples.
type Clock interface {
	// Now returns the current instant.
	Now() timestamp.Time
	// Sleep blocks until the given instant (or an implementation-defined
	// wakeup, for simulated clocks).
	SleepUntil(t timestamp.Time)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() timestamp.Time { return timestamp.FromTime(time.Now()) }

// SleepUntil implements Clock.
func (RealClock) SleepUntil(t timestamp.Time) {
	d := t.Sub(timestamp.FromTime(time.Now()))
	if d > 0 {
		time.Sleep(d)
	}
}

// SimClock is a manually advanced clock for deterministic runs.
type SimClock struct {
	mu  sync.Mutex
	now timestamp.Time
}

// NewSimClock starts a simulated clock at the given instant.
func NewSimClock(start timestamp.Time) *SimClock { return &SimClock{now: start} }

// Now implements Clock.
func (c *SimClock) Now() timestamp.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SleepUntil implements Clock: simulated time jumps forward immediately.
func (c *SimClock) SleepUntil(t timestamp.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// SchedulerOptions configures fault handling for a Scheduler.
type SchedulerOptions struct {
	// Policy drives retry backoff and the health state machine; zero
	// fields take DefaultRetryPolicy values.
	Policy RetryPolicy
	// OnError observes every polling failure (optional). Polling always
	// continues afterwards, per the retry policy.
	OnError func(sub string, err error)
	// OnHealth observes health-state transitions (optional). It is called
	// from poller goroutines and must be safe for concurrent use.
	OnHealth func(HealthEvent)
	// Seed seeds the per-subscription jitter generators, making retry
	// timing reproducible. 0 is a valid (fixed) seed.
	Seed int64
}

// Scheduler drives subscriptions' polls at their frequency specification's
// times until Stop is called. Failed polls are retried with exponential
// backoff and jitter; consecutive failures walk the subscription through
// the Degraded/Suspended health states (see Health) while its accumulated
// history keeps serving queries. A poll that panics is contained and
// treated as a failed poll, never killing the poller or the process.
type Scheduler struct {
	svc      *Service
	clock    Clock
	pol      RetryPolicy
	onError  func(sub string, err error)
	onHealth func(HealthEvent)
	seed     int64

	mu       sync.Mutex
	stopped  map[string]chan struct{}
	trackers map[string]*healthTracker
	wg       sync.WaitGroup
}

// NewScheduler builds a scheduler over svc with the default retry policy.
// onError (optional) observes polling failures; polling continues
// afterwards.
func NewScheduler(svc *Service, clock Clock, onError func(sub string, err error)) *Scheduler {
	return NewSchedulerWith(svc, clock, SchedulerOptions{OnError: onError})
}

// NewSchedulerWith builds a scheduler with explicit fault-handling options.
func NewSchedulerWith(svc *Service, clock Clock, opts SchedulerOptions) *Scheduler {
	onError := opts.OnError
	if onError == nil {
		onError = func(string, error) {}
	}
	return &Scheduler{
		svc:      svc,
		clock:    clock,
		pol:      opts.Policy.withDefaults(),
		onError:  onError,
		onHealth: opts.OnHealth,
		seed:     opts.Seed,
		stopped:  make(map[string]chan struct{}),
		trackers: make(map[string]*healthTracker),
	}
}

// Start begins polling the named subscription per its frequency spec.
func (sch *Scheduler) Start(name string, freq Freq) {
	stop := make(chan struct{})
	ht := &healthTracker{pol: sch.pol}
	sch.mu.Lock()
	if old, ok := sch.stopped[name]; ok {
		close(old)
	}
	sch.stopped[name] = stop
	sch.trackers[name] = ht
	sch.mu.Unlock()

	sch.wg.Add(1)
	go func() {
		defer sch.wg.Done()
		sch.run(name, freq, stop, ht)
	}()
}

// Health reports the current health state of the named subscription
// (Healthy when it is not scheduled).
func (sch *Scheduler) Health(name string) Health {
	sch.mu.Lock()
	defer sch.mu.Unlock()
	if ht, ok := sch.trackers[name]; ok {
		return ht.state
	}
	return Healthy
}

// States returns the health state of every scheduled subscription.
func (sch *Scheduler) States() map[string]Health {
	sch.mu.Lock()
	defer sch.mu.Unlock()
	out := make(map[string]Health, len(sch.trackers))
	for name, ht := range sch.trackers {
		out[name] = ht.state
	}
	return out
}

// run is one subscription's poll loop.
func (sch *Scheduler) run(name string, freq Freq, stop chan struct{}, ht *healthTracker) {
	// Per-subscription deterministic jitter: seed mixed with the name so
	// poller start order does not matter.
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(sch.seed ^ int64(h.Sum64())))

	backoff := sch.pol.Initial
	next := freq.Next(sch.clock.Now())
	for {
		select {
		case <-stop:
			return
		default:
		}
		sch.clock.SleepUntil(next)
		select {
		case <-stop:
			return
		default:
		}
		at := next
		err := sch.pollSafe(name, at)
		state := sch.record(name, ht, at, err)
		if err == nil {
			backoff = sch.pol.Initial
			next = freq.Next(at)
			continue
		}
		sch.onError(name, err)
		mRetries.Inc()
		if state == Suspended {
			// Probe cadence: slower, fixed-interval polls until the
			// source answers again.
			backoff = sch.pol.Initial
			next = at.Add(sch.pol.Probe)
			continue
		}
		// Retry with capped exponential backoff plus jitter.
		d := backoff + jitterFor(rng, backoff, sch.pol.Jitter)
		next = at.Add(d)
		backoff = time.Duration(float64(backoff) * sch.pol.Multiplier)
		if backoff > sch.pol.Max {
			backoff = sch.pol.Max
		}
	}
}

// pollSafe runs one poll, converting panics into errors so a misbehaving
// source or query cannot kill the poller goroutine.
func (sch *Scheduler) pollSafe(name string, t timestamp.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("qss: poll %q panicked: %v", name, r)
		}
	}()
	_, err = sch.svc.Poll(name, t)
	return err
}

// record feeds one poll outcome to the subscription's health tracker and
// emits a transition event if the state changed.
func (sch *Scheduler) record(name string, ht *healthTracker, at timestamp.Time, err error) Health {
	sch.mu.Lock()
	var from, to Health
	var changed bool
	if err == nil {
		from, to, changed = ht.onSuccess()
	} else {
		from, to, changed = ht.onFailure()
	}
	failures := ht.failures
	sch.mu.Unlock()
	if changed && obs.Enabled() {
		healthTransitionCounter(to).Inc()
	}
	if changed && sch.onHealth != nil {
		sch.onHealth(HealthEvent{
			Subscription: name,
			From:         from,
			To:           to,
			At:           at,
			Err:          err,
			Failures:     failures,
		})
	}
	return to
}

// jitterFor returns a deterministic pseudo-random extra of up to
// frac*backoff, in whole seconds (the history time domain's resolution).
func jitterFor(rng *rand.Rand, backoff time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return 0
	}
	maxSec := int64(backoff.Seconds() * frac)
	if maxSec <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(maxSec+1)) * time.Second
}

// Stop ends polling for the named subscription.
func (sch *Scheduler) Stop(name string) {
	sch.mu.Lock()
	if ch, ok := sch.stopped[name]; ok {
		close(ch)
		delete(sch.stopped, name)
	}
	delete(sch.trackers, name)
	sch.mu.Unlock()
}

// StopAll ends every poller and waits for them to exit.
func (sch *Scheduler) StopAll() {
	sch.mu.Lock()
	for name, ch := range sch.stopped {
		close(ch)
		delete(sch.stopped, name)
	}
	sch.trackers = make(map[string]*healthTracker)
	sch.mu.Unlock()
	sch.wg.Wait()
}
