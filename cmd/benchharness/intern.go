package main

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/doem"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/symbol"
	"repro/internal/value"
)

// newInternDB builds the B16 workload: a flat guide with n restaurants,
// each carrying a name and five attribute arcs whose labels are drawn from
// a 20-label alphabet. Every label string is formatted fresh per arc, the
// way a WAL or segment decoder would allocate it, so label storage is
// duplicated n times over without interning and deduplicated to the
// alphabet with it.
func newInternDB(n int) *doem.Database {
	db := oem.New()
	for i := 0; i < n; i++ {
		r := db.CreateNode(value.Complex())
		if err := db.AddArc(db.Root(), fmt.Sprintf("restauran%c", 't'), r); err != nil {
			panic(err)
		}
		name := db.CreateNode(value.Str(fmt.Sprintf("place-%d", i)))
		if err := db.AddArc(r, fmt.Sprintf("nam%c", 'e'), name); err != nil {
			panic(err)
		}
		for k := 0; k < 5; k++ {
			c := db.CreateNode(value.Int(int64(5 + (i+k)%40)))
			if err := db.AddArc(r, fmt.Sprintf("attr%02d", (i+k)%20), c); err != nil {
				panic(err)
			}
		}
	}
	return doem.New(db)
}

// newExistsDB builds the early-exit workload: the root carries n "item"
// arcs to integer atoms, with the single witness value 7 at position pos.
func newExistsDB(n, pos int) *doem.Database {
	db := oem.New()
	for i := 0; i < n; i++ {
		v := int64(i) + 1000
		if i == pos {
			v = 7
		}
		c := db.CreateNode(value.Int(v))
		if err := db.AddArc(db.Root(), "item", c); err != nil {
			panic(err)
		}
	}
	return doem.New(db)
}

// internEngine wraps d in an indexed graph and a fresh engine, so the A/B
// compares the same stack: string-keyed index tables and materialized
// evaluation on one side, symbol-keyed tables and streaming on the other.
func internEngine(d *doem.Database) *lorel.Engine {
	e := lorel.NewEngine()
	e.Register("guide", index.NewGraph(d))
	return e
}

// internQueries is the mixed eval op the B16 speedup measures: a count
// aggregate (streaming folds the path instead of materializing it), a
// selective two-generator traversal (per-binding exact-label matching,
// where interned probes pay), and an existential with an immediate
// witness. The exists leg is near-free in BOTH modes — the early-exit fix
// is deliberately ungated — so it anchors the workload shape without
// differentiating the A/B; the differentiation comes from the streamed
// aggregate and the symbol-keyed traversal.
func internQueries(e *lorel.Engine) {
	if _, err := e.Query(`select count(guide.restaurant.attr03)`); err != nil {
		panic(err)
	}
	if _, err := e.Query(`select max(guide.restaurant.attr02)`); err != nil {
		panic(err)
	}
	if _, err := e.Query(`select R from guide.restaurant R, R.attr03 X where X < 0`); err != nil {
		panic(err)
	}
	if _, err := e.Query(`select guide where exists N in guide.restaurant.name : N like "place%"`); err != nil {
		panic(err)
	}
}

// withGates runs fn with interning and streaming forced to on, restoring
// the previous gate state after.
func withGates(on bool, fn func()) {
	pi := symbol.SetEnabled(on)
	ps := lorel.SetStreaming(on)
	defer func() {
		symbol.SetEnabled(pi)
		lorel.SetStreaming(ps)
	}()
	fn()
}

func b16() {
	fmt.Println("\n-- B16: interned symbols + streaming evaluation vs string + materialized --")
	// The middle tier is pinned at 10k even under -quick: the B16a
	// acceptance bar is defined at 10k objects, and the mixed workload's
	// advantage narrows at toy sizes where fixed per-query overhead
	// dominates the per-binding costs the gates remove.
	tiers := []int{scale(1000), 10000, scale(100000)}
	var speedup10k float64
	fmt.Printf("  %8s %12s %12s %9s %12s %12s\n",
		"objects", "string/op", "intern/op", "speedup", "rss-string", "rss-intern")
	for ti, n := range tiers {
		var offNs, onNs time.Duration
		var offHeap, onHeap int64
		withGates(false, func() {
			pre := int64(heapInUse())
			d := newInternDB(n)
			offHeap = int64(heapInUse()) - pre
			e := internEngine(d)
			offNs = measure(func() { internQueries(e) })
		})
		withGates(true, func() {
			pre := int64(heapInUse())
			d := newInternDB(n)
			onHeap = int64(heapInUse()) - pre
			e := internEngine(d)
			onNs = measure(func() { internQueries(e) })
		})
		sp := float64(offNs) / float64(onNs)
		if ti == 1 {
			speedup10k = sp
		}
		fmt.Printf("  %8d %12s %12s %8.1fx %9.1f MiB %9.1f MiB\n",
			n, offNs, onNs, sp, float64(offHeap)/(1<<20), float64(onHeap)/(1<<20))
	}

	// Early-exit behavior: with the witness first, exists must cost a
	// small constant; with it last, the full scan. The ratio is the
	// evidence that work is proportional to the witness position.
	n := scale(10000)
	var earlyNs, lateNs time.Duration
	withGates(true, func() {
		eEarly := internEngine(newExistsDB(n, 0))
		eLate := internEngine(newExistsDB(n, n-1))
		q := `select guide where exists X in guide.item : X = 7`
		earlyNs = measure(func() {
			if _, err := eEarly.Query(q); err != nil {
				panic(err)
			}
		})
		lateNs = measure(func() {
			if _, err := eLate.Query(q); err != nil {
				panic(err)
			}
		})
	})
	ratio := float64(lateNs) / float64(earlyNs)
	fmt.Printf("  exists early-exit: witness-first %s, witness-last %s (%.1fx)\n",
		earlyNs, lateNs, ratio)

	check("B16a", "interned+streaming >= 1.5x over string+materialized at 10k objects",
		speedup10k >= 1.5)
	check("B16b", "exists cost proportional to witness position (late/early >= 5x)",
		ratio >= 5)
}

// runInternJSON is B16 in JSON form. The gated headlines are the 10k-tier
// mixed-workload speedup of interned+streaming evaluation over
// string+materialized (acceptance bar >= 1.5) and the exists early-exit
// ratio (witness-last over witness-first cost; a collapse back toward 1
// means exists is materializing again).
func runInternJSON(report *benchReport, bench func(string, func(*testing.B)) testing.BenchmarkResult) error {
	obs.SetEnabled(false)
	nsOp := func(r testing.BenchmarkResult) float64 { return float64(r.T.Nanoseconds()) / float64(r.N) }

	run := func(name string, n int, gates bool) float64 {
		var ns float64
		withGates(gates, func() {
			e := internEngine(newInternDB(n))
			ns = nsOp(bench(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					internQueries(e)
				}
			}))
		})
		return ns
	}
	run("intern-eval-1k-string", 1000, false)
	run("intern-eval-1k-intern", 1000, true)
	str10k := run("intern-eval-10k-string", 10000, false)
	int10k := run("intern-eval-10k-intern", 10000, true)
	report.InternEvalSpeedup10k = str10k / int10k

	var early, late float64
	withGates(true, func() {
		const n = 10000
		q := `select guide where exists X in guide.item : X = 7`
		eEarly := internEngine(newExistsDB(n, 0))
		eLate := internEngine(newExistsDB(n, n-1))
		early = nsOp(bench("exists-witness-first", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eEarly.Query(q); err != nil {
					panic(err)
				}
			}
		}))
		late = nsOp(bench("exists-witness-last", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eLate.Query(q); err != nil {
					panic(err)
				}
			}
		}))
	})
	report.ExistsEarlyExitRatio = late / early

	obs.SetEnabled(true)
	return nil
}
