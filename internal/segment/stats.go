package segment

import (
	"sync"

	"repro/internal/oem"
	"repro/internal/plan"
)

// DB serves planner statistics from the store summaries that already live
// in memory: the registry is the full arc relation, the active segment is
// the current snapshot, and the sealed summaries bound the annotation
// count. Nothing is read from disk — sealed segment indexes stay cold.
var _ plan.Stats = (*DB)(nil)

// storeStats is one materialized statistics summary, cached on the store
// and rebuilt when the stats version moves.
type storeStats struct {
	version    uint64
	nodeCount  int
	arcCount   int
	annotCount int
	labels     map[string]plan.LabelCard
}

// statsCache hangs off the Store lazily; the pointer is guarded by its
// own mutex because the query read path may race with itself (never with
// mutators — those exclude readers by contract).
type statsCache struct {
	mu  sync.Mutex
	cur *storeStats
}

// StatsVersion implements plan.Stats: a composition of the active
// segment's version with the sealed-segment count and the active
// annotation count, so both Apply and Seal move it. (Seal replaces the
// active database, whose own version restarts; the segment count keeps
// the composite moving forward.)
func (g *DB) StatsVersion() uint64 {
	s := g.s
	v := s.active.Version()
	v = v*0x100000001b3 + uint64(len(s.segs))*0x9e3779b97f4a7c15
	return v + uint64(s.activeAnnots)
}

// NodeCount implements plan.Stats: the id high-water mark approximates
// "nodes ever created" without touching sealed history (ids are dense in
// practice and never reused).
func (g *DB) NodeCount() int { return int(g.s.MaxID()) }

// ArcCount implements plan.Stats.
func (g *DB) ArcCount() int { return g.stats().arcCount }

// AnnotCount implements plan.Stats: the active segment's exact count plus
// a sealed-history estimate from the summaries (one annotation per
// creation, and at least one — counted as two, the add/rem average — per
// arc annotated in sealed history). Costing needs magnitude, not
// exactness.
func (g *DB) AnnotCount() int { return g.stats().annotCount }

// LabelStats implements plan.Stats.
func (g *DB) LabelStats(label string) plan.LabelCard {
	return g.stats().labels[label]
}

// stats returns the current summary, rebuilding it when the version moved.
func (g *DB) stats() *storeStats {
	s := g.s
	if s.statsC == nil {
		// Store construction always allocates statsC; a nil here means a
		// zero Store in a test — build uncached.
		return buildStoreStats(s, 0)
	}
	ver := g.StatsVersion()
	s.statsC.mu.Lock()
	defer s.statsC.mu.Unlock()
	if cur := s.statsC.cur; cur != nil && cur.version == ver {
		return cur
	}
	cur := buildStoreStats(s, ver)
	s.statsC.cur = cur
	return cur
}

func buildStoreStats(s *Store, ver uint64) *storeStats {
	st := &storeStats{
		version:    ver,
		nodeCount:  int(s.MaxID()),
		annotCount: s.activeAnnots + 2*len(s.sealedStatus) + len(s.cre),
		labels:     make(map[string]plan.LabelCard),
	}
	root := s.active.Root()

	// Current snapshot: the active segment alone.
	type pl struct {
		n     oem.NodeID
		label string
	}
	seen := make(map[pl]bool)
	for _, n := range s.active.AllNodeIDs() {
		for _, a := range s.active.Out(n) {
			lc := st.labels[a.Label]
			if k := (pl{n, a.Label}); !seen[k] {
				seen[k] = true
				lc.Parents++
			}
			lc.Arcs++
			if n == root {
				lc.RootOut++
			}
			st.labels[a.Label] = lc
			st.arcCount++
		}
	}

	// Full relation: the registry.
	seenAll := make(map[pl]bool)
	for n, arcs := range s.registry {
		for _, a := range arcs {
			lc := st.labels[a.Label]
			if k := (pl{n, a.Label}); !seenAll[k] {
				seenAll[k] = true
				lc.AllParents++
			}
			lc.AllArcs++
			if n == root {
				lc.AllRootOut++
			}
			st.labels[a.Label] = lc
		}
	}
	return st
}
