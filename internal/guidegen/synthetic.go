package guidegen

import (
	"fmt"
	"math/rand"

	"repro/internal/change"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Synthetic deterministically generates a restaurant guide with n entries,
// reproducing the structural irregularity the paper motivates OEM with:
// integer and string prices, string and complex addresses, optional fields,
// shared parking objects, and nearby-eats cycles.
func Synthetic(seed int64, n int) *oem.Database {
	g := NewEvolver(seed, n)
	return g.DB
}

// Evolver owns a synthetic guide database and generates valid change sets
// against it — the workload driver for DOEM construction, diffing, and QSS
// benchmarks.
type Evolver struct {
	DB  *oem.Database
	rng *rand.Rand
	// restaurants tracks live restaurant object ids.
	restaurants []oem.NodeID
	parkings    []oem.NodeID
	serial      int
	// nextID is a monotonic id high-water mark. It must never be re-derived
	// from the live database: garbage collection can delete the
	// highest-numbered nodes, and re-allocating a deleted id would violate
	// the paper's Section 2.2 rule that identifiers never recur.
	nextID oem.NodeID
}

var cuisines = []string{"Thai", "Indian", "Italian", "Mexican", "Japanese", "French", "Ethiopian", "Greek"}
var streets = []string{"Lytton", "University", "Hamilton", "Emerson", "Ramona", "Bryant", "Waverley"}

// NewEvolver builds a guide of n restaurants and returns the evolver.
func NewEvolver(seed int64, n int) *Evolver {
	e := &Evolver{DB: oem.New(), rng: rand.New(rand.NewSource(seed))}
	// A few shared parking lots.
	nLots := n/10 + 1
	for i := 0; i < nLots; i++ {
		p := e.DB.CreateNode(value.Complex())
		e.mustArc(e.DB.Root(), "parking-lot", p)
		e.mustAtom(p, "address", value.Str(fmt.Sprintf("%s lot %d", streets[i%len(streets)], i)))
		if e.rng.Intn(2) == 0 {
			e.mustAtom(p, "comment", value.Str("usually full"))
		}
		e.parkings = append(e.parkings, p)
	}
	for i := 0; i < n; i++ {
		e.addRestaurant(e.DB)
	}
	return e
}

func (e *Evolver) mustArc(p oem.NodeID, l string, c oem.NodeID) {
	if err := e.DB.AddArc(p, l, c); err != nil {
		panic(err)
	}
}

func (e *Evolver) mustAtom(p oem.NodeID, l string, v value.Value) oem.NodeID {
	n := e.DB.CreateNode(v)
	e.mustArc(p, l, n)
	return n
}

// addRestaurant appends a restaurant directly to db (used during initial
// construction).
func (e *Evolver) addRestaurant(db *oem.Database) oem.NodeID {
	e.serial++
	r := db.CreateNode(value.Complex())
	e.mustArc(db.Root(), "restaurant", r)
	e.mustAtom(r, "name", value.Str(fmt.Sprintf("Restaurant %d", e.serial)))
	// Irregular price: integer, string rating, or absent.
	switch e.rng.Intn(3) {
	case 0:
		e.mustAtom(r, "price", value.Int(int64(5+e.rng.Intn(40))))
	case 1:
		e.mustAtom(r, "price", value.Str([]string{"cheap", "moderate", "expensive"}[e.rng.Intn(3)]))
	}
	e.mustAtom(r, "cuisine", value.Str(cuisines[e.rng.Intn(len(cuisines))]))
	// Irregular address: plain string or complex with street/city.
	if e.rng.Intn(2) == 0 {
		e.mustAtom(r, "address", value.Str(fmt.Sprintf("%d %s", 100+e.rng.Intn(900), streets[e.rng.Intn(len(streets))])))
	} else {
		a := db.CreateNode(value.Complex())
		e.mustArc(r, "address", a)
		e.mustAtom(a, "street", value.Str(streets[e.rng.Intn(len(streets))]))
		e.mustAtom(a, "city", value.Str("Palo Alto"))
	}
	// Optional shared parking, with an occasional nearby-eats back edge.
	if len(e.parkings) > 0 && e.rng.Intn(2) == 0 {
		p := e.parkings[e.rng.Intn(len(e.parkings))]
		e.mustArc(r, "parking", p)
		if e.rng.Intn(4) == 0 && !db.HasArc(p, "nearby-eats", r) {
			e.mustArc(p, "nearby-eats", r)
		}
	}
	e.restaurants = append(e.restaurants, r)
	return r
}

// Step produces one valid change set against the current database state
// with roughly nOps operations (price updates, new restaurants, new
// comments, closures) and applies it. It returns the set for recording in
// a history or DOEM database.
func (e *Evolver) Step(nOps int) change.Set {
	var set change.Set
	// Build against a scratch copy so validation failures can be retried.
	touchedUpd := make(map[oem.NodeID]bool)
	if e.nextID == 0 {
		e.nextID = maxNodeID(e.DB) + 1
	}
	nextID := e.nextID
	newArcs := make(map[oem.Arc]bool)
	for i := 0; i < nOps; i++ {
		switch e.rng.Intn(10) {
		case 0, 1, 2, 3: // price/comment update
			if len(e.restaurants) == 0 {
				continue
			}
			r := e.restaurants[e.rng.Intn(len(e.restaurants))]
			arcs := e.DB.OutLabeled(r, "price")
			if len(arcs) == 0 || touchedUpd[arcs[0].Child] {
				continue
			}
			touchedUpd[arcs[0].Child] = true
			set = append(set, change.UpdNode{Node: arcs[0].Child, Value: value.Int(int64(5 + e.rng.Intn(40)))})
		case 4, 5: // new restaurant (name only, like Hakata)
			e.serial++
			r := nextID
			nm := nextID + 1
			nextID += 2
			set = append(set,
				change.CreNode{Node: r, Value: value.Complex()},
				change.CreNode{Node: nm, Value: value.Str(fmt.Sprintf("Restaurant %d", e.serial))},
				change.AddArc{Parent: e.DB.Root(), Label: "restaurant", Child: r},
				change.AddArc{Parent: r, Label: "name", Child: nm},
			)
		case 6, 7: // add a comment to a restaurant
			if len(e.restaurants) == 0 {
				continue
			}
			r := e.restaurants[e.rng.Intn(len(e.restaurants))]
			c := nextID
			nextID++
			set = append(set,
				change.CreNode{Node: c, Value: value.Str("updated info")},
				change.AddArc{Parent: r, Label: "comment", Child: c},
			)
		case 8: // remove a parking arc
			if len(e.restaurants) == 0 {
				continue
			}
			r := e.restaurants[e.rng.Intn(len(e.restaurants))]
			arcs := e.DB.OutLabeled(r, "parking")
			if len(arcs) == 0 {
				continue
			}
			a := arcs[0]
			key := oem.Arc{Parent: a.Parent, Label: a.Label, Child: a.Child}
			if newArcs[key] {
				continue
			}
			newArcs[key] = true
			set = append(set, change.RemArc{Parent: a.Parent, Label: a.Label, Child: a.Child})
		case 9: // close a restaurant (remove its root arc)
			if len(e.restaurants) < 5 {
				continue
			}
			idx := e.rng.Intn(len(e.restaurants))
			r := e.restaurants[idx]
			key := oem.Arc{Parent: e.DB.Root(), Label: "restaurant", Child: r}
			if newArcs[key] || !e.DB.HasArc(key.Parent, key.Label, key.Child) {
				continue
			}
			newArcs[key] = true
			set = append(set, change.RemArc{Parent: key.Parent, Label: key.Label, Child: r})
			e.restaurants = append(e.restaurants[:idx], e.restaurants[idx+1:]...)
		}
	}
	if err := set.Validate(e.DB); err != nil {
		// Conservative fallback: an empty step. Collisions are rare and a
		// missing step does not matter to workload generators.
		return change.Set{}
	}
	e.nextID = nextID // consume the allocated ids, even across failed steps
	if _, err := set.Apply(e.DB); err != nil {
		panic(err)
	}
	// Track newly created restaurants for future steps.
	for _, op := range set {
		if a, ok := op.(change.AddArc); ok && a.Parent == e.DB.Root() && a.Label == "restaurant" {
			e.restaurants = append(e.restaurants, a.Child)
		}
	}
	return set
}

// History generates a history of steps against a clone of the initial
// database: it returns the initial snapshot and the history (the evolver
// is consumed).
func GenerateHistory(seed int64, nRestaurants, steps, opsPerStep int) (*oem.Database, change.History) {
	e := NewEvolver(seed, nRestaurants)
	initial := e.DB.Clone()
	t := timestamp.MustParse("1Jan97")
	var h change.History
	for i := 0; i < steps; i++ {
		set := e.Step(opsPerStep)
		if len(set) > 0 {
			h = append(h, change.Step{At: t, Ops: set})
		}
		t = t.Add(86400e9) // +1 day
	}
	return initial, h
}

func maxNodeID(db *oem.Database) oem.NodeID {
	var m oem.NodeID
	for _, id := range db.Nodes() {
		if id > m {
			m = id
		}
	}
	return m
}
