package trigger

import (
	"fmt"
	"testing"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/obs"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// TestIncrementalSuppression checks that Apply only evaluates the
// triggers the delta can affect, that suppression is observable through
// the trigger_* counters, and that firings are identical with the
// matcher disabled.
func TestIncrementalSuppression(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))

	run := func(incremental bool) (fired []string, evaluated, suppressed int64) {
		db, ids := guidegen.PaperGuide()
		m := NewManager("guide", doem.New(db))
		m.SetIncremental(incremental)
		for name, q := range map[string]string{
			"price-watch": `select NV from guide.restaurant R, R.price<upd at T to NV> where T > t[-1]`,
			"new-rest":    `select guide.<add at T>restaurant where T > t[-1]`,
			"unguarded":   `select guide.restaurant.name`,
		} {
			name := name
			if err := m.Add(Trigger{Name: name, Query: q,
				Action: func(Firing) error { fired = append(fired, name); return nil }}); err != nil {
				t.Fatal(err)
			}
		}
		ev0 := mEvaluated.Value()
		sp0 := mSuppressed.Value()
		// A comment change affects neither guarded trigger.
		if err := m.Apply(timestamp.MustParse("1Jan97"), change.Set{
			change.CreNode{Node: 700, Value: value.Str("note")},
			change.AddArc{Parent: ids.Bangkok, Label: "comment", Child: 700},
		}); err != nil {
			t.Fatal(err)
		}
		// A price update affects exactly price-watch (plus unguarded).
		if err := m.Apply(timestamp.MustParse("2Jan97"), change.Set{
			change.UpdNode{Node: ids.Price, Value: value.Int(33)},
		}); err != nil {
			t.Fatal(err)
		}
		return fired, mEvaluated.Value() - ev0, mSuppressed.Value() - sp0
	}

	fired, evaluated, suppressed := run(true)
	// Step 1: only "unguarded" evaluated; step 2: price-watch + unguarded.
	if evaluated != 3 || suppressed != 3 {
		t.Errorf("incremental: evaluated=%d suppressed=%d, want 3 and 3", evaluated, suppressed)
	}
	firedFull, evaluatedFull, suppressedFull := run(false)
	if evaluatedFull != 6 || suppressedFull != 0 {
		t.Errorf("full: evaluated=%d suppressed=%d, want 6 and 0", evaluatedFull, suppressedFull)
	}
	if fmt.Sprint(fired) != fmt.Sprint(firedFull) {
		t.Errorf("firing parity: incremental=%v full=%v", fired, firedFull)
	}
	if len(fired) == 0 {
		t.Error("no trigger fired (test is vacuous)")
	}
}
