// Package qss implements the paper's Query Subscription Service
// (Section 6, Figures 6-7): standing queries over changes in autonomous,
// semistructured information sources.
//
// For each subscription, QSS periodically sends a *polling query* (Lorel)
// to the source's wrapper, packages the result as an OEM database,
// infers the changes from the previous result with oemdiff (the paper's
// OEMdiff module), folds them into a DOEM database, and evaluates the
// *filter query* (Chorel, with the polling-time variables t[0], t[-1], ...)
// over it. Non-empty filter results are delivered as notifications.
package qss

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/incr"
	"repro/internal/index"
	"repro/internal/lorel"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/oemdiff"
	"repro/internal/repl"
	"repro/internal/segment"
	"repro/internal/timestamp"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// Subscription describes one standing query (paper: S = <f, Ql, Qc>).
type Subscription struct {
	// Name identifies the subscription; the filter query addresses the
	// accumulated DOEM database by this name ("LyttonRestaurants").
	Name string
	// SourceName is the database name the polling query addresses
	// ("guide"). Defaults to "source".
	SourceName string
	// Source is the wrapper to poll.
	Source wrapper.Source
	// Polling is the Lorel polling query Ql.
	Polling string
	// Filter is the Chorel filter query Qc; it may use t[0], t[-1], ...
	Filter string
	// Freq schedules the polling times. Optional when polls are driven
	// manually (the paper's explicit-request mode).
	Freq Freq
}

// Notification is one filter-query delivery.
type Notification struct {
	Subscription string
	At           timestamp.Time
	// Result is the filter query result.
	Result *lorel.Result
	// Answer is the result materialized as a self-contained OEM database
	// (what travels to a remote client).
	Answer *oem.Database
}

// Service is the QSS server core: the Subscription Manager, Query Manager,
// OEMdiff module, DOEM Manager and Chorel engine of Figure 7, without the
// network layer (see Server).
type Service struct {
	mu     sync.Mutex
	subs   map[string]*subState
	notify func(Notification)
	// walDir/walOpt, when set via EnableWAL, give every subscription a
	// write-ahead log so restarts recover history without re-polling.
	walDir string
	walOpt *wal.Options
	// segDir/segOpt/segPol, when set via EnableSegments, give every
	// subscription a time-partitioned segment store instead (mutually
	// exclusive with the WAL).
	segDir string
	segOpt *wal.Options
	segPol *segment.Policy
	// replNode, when set via EnableReplication, routes every poll record
	// through a replicated oplog with quorum acknowledgment (mutually
	// exclusive with walDir/segDir; see repl.go).
	replNode *repl.Node
	// workers is the evaluation parallelism applied to the per-poll
	// polling- and filter-query engines (0 = serial).
	workers int
	// noIndex disables the secondary-index wrapper on subscription DOEM
	// databases; it defaults to the package-wide index.Enabled() switch.
	noIndex bool
	// noIncr disables delta-driven filter suppression (internal/incr):
	// every poll then evaluates every filter query as before. Defaults to
	// the package-wide incr.Enabled() switch (-noincremental,
	// REPRO_NOINCREMENTAL).
	noIncr bool
}

type subState struct {
	// pollMu serializes whole polls (source I/O through filter delivery).
	// It is always acquired before mu and held across the replication
	// quorum wait, during which mu is released so the node's ReplState can
	// fold the record in.
	pollMu sync.Mutex
	// mu guards the fields below (history, remap, poll times).
	mu  sync.Mutex
	sub Subscription
	// replica marks state maintained by replication with no subscription
	// attached (no source, no queries): a follower's copy, or a primary's
	// own state rebuilt from the oplog before Subscribe re-adopted it.
	// Replicas serve reads (History, List) but cannot poll.
	replica bool
	d       *doem.Database
	// pollNs is this subscription's poll-latency histogram,
	// qss_poll_ns{sub="<name>"}.
	pollNs *obs.Histogram
	// remap maps source node ids to packaged ids (stable-id sources).
	remap map[oem.NodeID]oem.NodeID
	// nextID allocates packaged ids monotonically, never reusing ids of
	// objects deleted from the DOEM database.
	nextID    oem.NodeID
	pollTimes []timestamp.Time
	// log, when non-nil, records every poll for crash recovery.
	log *wal.Log
	// seg, when non-nil, is the subscription's segmented history store; d
	// is then always its active segment and the sidecar at sidePath holds
	// the poll times, remap and id high-water mark (see segments.go).
	seg      *segment.Store
	sidePath string
	// ig is the secondary-index wrapper filter queries evaluate through;
	// nil when indexing is off. It is invalidated after every poll
	// application and rebuilt whenever d is swapped (truncate, import).
	ig *index.Graph
	// fp is the filter query's incremental-matching fingerprint; polls
	// whose applied delta provably cannot produce a filter row skip the
	// evaluation entirely (see internal/incr). Nil on unclaimed replicas,
	// which never evaluate filters.
	fp *incr.Fingerprint
}

// graph returns the view the subscription's filter queries range over:
// the segment store's merged graph in segmented mode (st.d alone is only
// the active segment), else the indexed wrapper when present, else the raw
// DOEM database.
func (st *subState) graph() lorel.Graph {
	if st.seg != nil {
		return st.seg.Graph()
	}
	if st.ig != nil {
		return st.ig
	}
	return st.d
}

// setDOEM swaps the subscription's database, rebuilding the index wrapper
// if one was active (an index.Graph is bound to one *doem.Database).
func (st *subState) setDOEM(d *doem.Database) {
	st.d = d
	if st.ig != nil {
		st.ig = index.NewGraph(d)
	}
}

// Errors.
var (
	ErrDuplicate = errors.New("qss: subscription already exists")
	ErrNoSuchSub = errors.New("qss: no such subscription")
	ErrStalePoll = errors.New("qss: polling time not after previous poll")
)

// NewService returns a service delivering notifications through fn
// (which must be safe for concurrent use).
func NewService(fn func(Notification)) *Service {
	if fn == nil {
		fn = func(Notification) {}
	}
	return &Service{
		subs:    make(map[string]*subState),
		notify:  fn,
		noIndex: !index.Enabled(),
		noIncr:  !incr.Enabled(),
	}
}

// SetIncremental switches delta-driven filter suppression on or off (the
// -noincremental escape hatch) for all subsequent polls. Off means every
// poll evaluates every filter query unconditionally, exactly as before
// internal/incr existed; notifications are byte-identical either way.
func (s *Service) SetIncremental(on bool) {
	s.mu.Lock()
	s.noIncr = !on
	s.mu.Unlock()
}

// SetIndexing switches poll-time filter evaluation between the indexed
// wrapper and the raw DOEM database (the -noindex escape hatch), for
// existing and future subscriptions.
func (s *Service) SetIndexing(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noIndex = !on
	for _, st := range s.subs {
		st.mu.Lock()
		if !on {
			st.ig = nil
		} else if st.ig == nil && st.seg == nil {
			// Segmented subscriptions query through the segment store's own
			// per-segment indexes; the monolithic wrapper does not apply.
			st.ig = index.NewGraph(st.d)
		}
		st.mu.Unlock()
	}
}

// SetParallelism sets the evaluation worker count used by every poll's
// polling- and filter-query engines (n <= 0 selects GOMAXPROCS; see
// lorel.Engine.SetParallelism). Polls already in flight are unaffected.
func (s *Service) SetParallelism(n int) {
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// Subscribe registers a subscription. The polling and filter queries are
// parsed eagerly so errors surface at subscription time.
func (s *Service) Subscribe(sub Subscription) error {
	if sub.Name == "" {
		return errors.New("qss: subscription needs a name")
	}
	if sub.SourceName == "" {
		sub.SourceName = "source"
	}
	if sub.Source == nil {
		return errors.New("qss: subscription needs a source")
	}
	if _, err := lorel.Parse(sub.Polling); err != nil {
		return fmt.Errorf("qss: polling query: %w", err)
	}
	if _, err := lorel.Parse(sub.Filter); err != nil {
		return fmt.Errorf("qss: filter query: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, dup := s.subs[sub.Name]; dup {
		if s.replNode == nil || !prev.replica {
			return fmt.Errorf("%w: %q", ErrDuplicate, sub.Name)
		}
		// Adopt the replicated history: the state was rebuilt from the
		// oplog (this node followed a primary, or restarted). Attaching
		// the subscription's source and queries makes it pollable again
		// without losing a step — the t[-i] alignment survives failover.
		prev.mu.Lock()
		prev.sub = sub
		prev.replica = false
		prev.fp = filterFingerprint(sub, prev.graph())
		prev.mu.Unlock()
		return nil
	}
	st := &subState{
		sub: sub,
		// R0 is the empty OEM database (paper Section 6).
		d:      doem.New(oem.New()),
		remap:  make(map[oem.NodeID]oem.NodeID),
		nextID: 1, // the packaged root; alloc pre-increments past it
		pollNs: obs.NewHistogram(obs.LabeledName("qss_poll_ns", "sub", sub.Name)),
	}
	if !s.noIndex && s.segDir == "" {
		st.ig = index.NewGraph(st.d)
	}
	if s.segDir != "" {
		if err := s.attachSegments(st, sub.Name); err != nil {
			return err
		}
	} else if s.walDir != "" {
		if err := s.attachLog(st, sub.Name); err != nil {
			return err
		}
	}
	st.fp = filterFingerprint(sub, st.graph())
	s.subs[sub.Name] = st
	return nil
}

// filterFingerprint statically analyzes a subscription's filter query for
// incremental matching. Queries that fail to parse or canonicalize here
// come back unanalyzable (never skipped); Subscribe has already surfaced
// parse errors to the caller.
func filterFingerprint(sub Subscription, g lorel.Graph) *incr.Fingerprint {
	q, err := lorel.Parse(sub.Filter)
	if err != nil {
		return &incr.Fingerprint{}
	}
	if err := lorel.Canonicalize(q); err != nil {
		return &incr.Fingerprint{}
	}
	return incr.Extract(q, map[string]lorel.Graph{sub.Name: g})
}

// Unsubscribe removes a subscription. Its write-ahead log or segment
// store, if any, is closed but left on disk: re-subscribing under the same
// name resumes the recorded history.
func (s *Service) Unsubscribe(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchSub, name)
	}
	st.mu.Lock()
	if st.log != nil {
		st.log.Close()
		st.log = nil
	}
	if st.seg != nil {
		st.seg.Close()
		st.seg = nil
	}
	if s.replNode != nil {
		// Replicated state must stay exactly what the oplog reproduces (a
		// restart replays it all back), so unsubscribing only detaches the
		// source and queries: the history survives as an unclaimed replica
		// and a later Subscribe under the same name re-adopts it.
		st.sub = Subscription{}
		st.replica = true
		st.mu.Unlock()
		return nil
	}
	st.mu.Unlock()
	delete(s.subs, name)
	return nil
}

// List returns the subscription names, sorted.
func (s *Service) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for n := range s.subs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// History returns the accumulated DOEM database and polling times of a
// subscription (for inspection and the examples).
func (s *Service) History(name string) (*doem.Database, []timestamp.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.subs[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchSub, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.d, append([]timestamp.Time(nil), st.pollTimes...), nil
}

// Truncate collapses a subscription's history up to and including t into
// its base snapshot — the paper's Section 6.1 space-conservation strategy
// ("trading accuracy for space"). Filter queries can no longer distinguish
// changes at or before t. Polling times at or before t are dropped too, so
// t[-i] references keep their alignment with surviving history.
func (s *Service) Truncate(name string, t timestamp.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replNode != nil {
		// Truncation would diverge the in-memory state from what the
		// replicated oplog replays on the next restart (and from every
		// follower). Compact the node's oplog instead.
		return errors.New("qss: truncate is not supported under replication")
	}
	st, ok := s.subs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchSub, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.seg != nil {
		// Segmented mode: the store collapses its own history (deleting the
		// sealed segments, whose immutability also means t may not fall
		// strictly inside them).
		if err := st.seg.Truncate(t); err != nil {
			return fmt.Errorf("qss: truncate: %w", err)
		}
		st.setDOEM(st.seg.Active())
	} else {
		td, err := st.d.Truncate(t)
		if err != nil {
			return fmt.Errorf("qss: truncate: %w", err)
		}
		st.setDOEM(td)
	}
	var kept []timestamp.Time
	for _, pt := range st.pollTimes {
		if pt.After(t) {
			kept = append(kept, pt)
		}
	}
	st.pollTimes = kept
	st.pruneRemap()
	// Under WAL persistence a truncation is also a log compaction: the
	// truncated state becomes the checkpoint and covered segments go away
	// (the paper's space-for-accuracy trade applied to the log).
	if st.log != nil {
		ck, err := st.marshalState(name)
		if err != nil {
			return err
		}
		if err := st.log.Checkpoint(ck, st.log.LastSeq()); err != nil {
			return fmt.Errorf("qss: truncate checkpoint: %w", err)
		}
	}
	if st.seg != nil {
		if err := st.saveSidecar(); err != nil {
			return err
		}
	}
	return nil
}

// Poll performs one polling cycle for the named subscription at time t:
// poll the source, evaluate the polling query, diff against the previous
// result, extend the DOEM history, evaluate the filter, and deliver a
// notification if the filter result is non-empty. It returns the
// notification (nil when empty) — Figure 6's dataflow.
func (s *Service) Poll(name string, t timestamp.Time) (*Notification, error) {
	return s.PollContext(context.Background(), name, t)
}

// PollContext is Poll with cancellation: the polling and filter query
// evaluations abort shortly after ctx is cancelled.
func (s *Service) PollContext(ctx context.Context, name string, t timestamp.Time) (*Notification, error) {
	start := obs.Now()
	n, err := s.pollContext(ctx, name, t)
	mPolls.Inc()
	if err != nil {
		mPollFailures.Inc()
	} else if n != nil {
		mNotifications.Inc()
	}
	if !start.IsZero() {
		s.mu.Lock()
		st := s.subs[name]
		s.mu.Unlock()
		if st != nil {
			st.pollNs.ObserveSince(start)
		}
	}
	return n, err
}

func (s *Service) pollContext(ctx context.Context, name string, t timestamp.Time) (*Notification, error) {
	s.mu.Lock()
	st, ok := s.subs[name]
	workers := s.workers
	node := s.replNode
	noIncr := s.noIncr
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoSuchSub, name)
	}
	s.mu.Unlock()
	// Polls of one subscription are serialized by pollMu; different
	// subscriptions poll concurrently. st.mu alone is not enough: in
	// replication mode it is released around the quorum wait below.
	st.pollMu.Lock()
	defer st.pollMu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.replica {
		return nil, fmt.Errorf("%w: %q is an unclaimed replica (subscribe to adopt it)", ErrNoSuchSub, name)
	}
	if len(st.pollTimes) > 0 && !t.After(st.pollTimes[len(st.pollTimes)-1]) {
		return nil, fmt.Errorf("%w: %s", ErrStalePoll, t)
	}

	tr := obs.TraceFrom(ctx)

	// 1. Query Manager: polling query over the source snapshot.
	sp := tr.StartSpan("source-poll")
	snap, err := st.sub.Source.Poll()
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("qss: polling source: %w", err)
	}
	eng := lorel.NewEngine()
	eng.Register(st.sub.SourceName, lorel.NewOEMGraph(snap))
	if workers != 0 {
		eng.SetParallelism(workers)
	}
	res, err := eng.QueryContext(ctx, st.sub.Polling)
	if err != nil {
		return nil, fmt.Errorf("qss: polling query: %w", err)
	}

	// 2. Package the result as an OEM database R_i (recursively including
	// all subobjects, paper Section 6). Packaging allocates remap entries
	// and advances the id high-water mark; savedNextID lets a refused
	// replication append roll those allocations back.
	savedNextID := st.nextID
	pkg, added := st.packageResult(snap, res)

	// 3. OEMdiff: infer U_i with U_i(R_{i-1}) = R_i.
	sp = tr.StartSpan("diff")
	prev := st.d.Current()
	var ops change.Set
	if st.sub.Source.StableIDs() {
		ops, err = oemdiff.DiffIdentity(prev, pkg)
	} else {
		next := st.d.MaxID()
		if st.seg != nil {
			// The active segment's MaxID forgets ids that were garbage-
			// collected in sealed intervals; the store's covers all history
			// (ids are never reused, paper Section 2.2).
			if m := st.seg.MaxID(); m > next {
				next = m
			}
		}
		if m := maxID(pkg); m > next {
			next = m
		}
		ops, err = oemdiff.Diff(prev, pkg, &oemdiff.Options{
			AllocID: func() oem.NodeID { next++; return next },
		})
	}
	sp.EndNote("ops=%d", len(ops))
	if err != nil {
		return nil, fmt.Errorf("qss: differencing: %w", err)
	}

	// 4. DOEM Manager: extend the history.
	sp = tr.StartSpan("apply")
	if node != nil {
		// Replication mode: the poll record must be durable on the
		// replicated oplog — and acknowledged by the configured quorum —
		// before the state advances and the filter runs. The node's
		// ReplState folds the record into st (the same code path a
		// follower's stream and a restart replay take), so st.mu is
		// released for the duration; pollMu keeps the poll serialized.
		rec := appendPollRecord(nil, t, ops, added, st.nextID)
		st.mu.Unlock()
		seq, aerr := node.Apply(name, rec)
		st.mu.Lock()
		sp.End()
		if aerr != nil {
			if seq == 0 {
				// Never appended (fenced, demoted, closed before the
				// append): roll back the ids packaging allocated, or the
				// next poll of a stable-id source would reuse mappings no
				// oplog record carries and silently diverge from the
				// followers.
				for _, p := range added {
					delete(st.remap, p.Src)
				}
				st.nextID = savedNextID
			}
			// seq != 0 means the record is durably on the oplog — the
			// node was fenced, closed, or timed out only during the quorum
			// wait (the normal failover case). It may still replicate, or
			// a failover may discard it; either way in-memory id state
			// must keep matching the durable log, so no rollback. In both
			// cases, no notification for a poll that might not survive.
			return nil, fmt.Errorf("qss: replicating poll: %w", aerr)
		}
	} else if st.seg != nil {
		// Segmented mode persists the sidecar (poll time, remap additions,
		// id high-water mark) BEFORE the store append. A crash between the
		// two then recovers as a phantom silent poll — the orphaned remap
		// entries prune against the unchanged state and the source changes
		// surface at the next poll's own time — rather than leaving durable
		// change steps whose remap delta is lost, which would make a
		// stable-id source's objects look spuriously re-created.
		st.pollTimes = append(st.pollTimes, t)
		if err := st.saveSidecar(); err != nil {
			st.pollTimes = st.pollTimes[:len(st.pollTimes)-1]
			sp.End()
			return nil, err
		}
		if len(ops) > 0 {
			// The append lands in the active segment and may trigger an
			// auto-seal, which swaps the active database.
			if err := st.seg.Apply(t, ops); err != nil {
				sp.End()
				return nil, fmt.Errorf("qss: applying changes: %w", err)
			}
			if ad := st.seg.Active(); ad != st.d {
				st.setDOEM(ad)
			}
			st.pruneRemap()
		}
		sp.End()
	} else {
		if len(ops) > 0 {
			if err := st.d.Apply(t, ops); err != nil {
				sp.End()
				return nil, fmt.Errorf("qss: applying changes: %w", err)
			}
			st.pruneRemap()
			// Poll application is an index invalidation hook: cached
			// snapshots of the pre-poll generation must not serve the
			// filter query below.
			if st.ig != nil {
				st.ig.Invalidate()
			}
		}
		st.pollTimes = append(st.pollTimes, t)
		sp.End()

		// 4b. Log the poll. Empty change sets are logged too: the polling
		// time itself is state (it anchors the filter's t[-i] variables).
		if st.log != nil {
			sp = tr.StartSpan("wal-append")
			rec := appendPollRecord(nil, t, ops, added, st.nextID)
			_, err := st.log.Append(rec)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("qss: logging poll: %w", err)
			}
		}
	}

	// 4c. Incremental matching: if the filter query carries fresh guards
	// (internal/incr) and the delta just applied provably cannot produce
	// any filter row, skip the evaluation — the outcome (no notification)
	// is byte-identical to evaluating. This runs after every apply branch
	// above, so it holds the same way on plain, segmented, and replicated
	// subscriptions; st.d.Current() is the full post-apply snapshot in all
	// three (the active segment carries the whole current state).
	if !noIncr && st.fp != nil {
		cur := st.d.Current()
		if !st.fp.Decide(incr.Summarize(ops, cur), cur) {
			return nil, nil
		}
	}

	// 5. Chorel engine: evaluate the filter with t[i] bound.
	feng := lorel.NewEngine()
	feng.Register(st.sub.Name, st.graph())
	feng.SetPollTimes(st.pollTimes)
	if workers != 0 {
		feng.SetParallelism(workers)
	}
	fres, err := feng.QueryContext(ctx, st.sub.Filter)
	if err != nil {
		return nil, fmt.Errorf("qss: filter query: %w", err)
	}
	if fres.Len() == 0 {
		return nil, nil
	}
	n := &Notification{
		Subscription: name,
		At:           t,
		Result:       fres,
		Answer:       fres.Answer(),
	}
	s.notify(*n)
	return n, nil
}

// packageResult copies the subobject closure of the polling-query result
// into a fresh database. Source node ids map to stable packaged ids; ids
// whose objects were deleted from the DOEM database are never reused.
// It also reports the remap entries added during this poll (empty for
// sources without stable ids, whose remap is per-poll) so they can be
// recorded in the subscription's write-ahead log.
func (st *subState) packageResult(snap *oem.Database, res *lorel.Result) (*oem.Database, []remapPair) {
	out := oem.New()
	alloc := func() oem.NodeID {
		st.nextID++
		return st.nextID
	}
	remap := st.remap
	persistent := st.sub.Source.StableIDs()
	if !persistent {
		// Source ids are meaningless across polls; use a per-poll map so
		// the persistent remap does not grow without bound.
		remap = make(map[oem.NodeID]oem.NodeID)
	}
	var added []remapPair
	copied := make(map[oem.NodeID]bool)
	var copyNode func(src oem.NodeID) oem.NodeID
	copyNode = func(src oem.NodeID) oem.NodeID {
		id, ok := remap[src]
		if !ok {
			id = alloc()
			remap[src] = id
			if persistent {
				added = append(added, remapPair{Src: src, ID: id})
			}
		}
		if copied[src] {
			return id
		}
		copied[src] = true
		if !out.Has(id) {
			if err := out.CreateNodeWithID(id, snap.MustValue(src)); err != nil {
				panic(fmt.Sprintf("qss: packaging: %v", err))
			}
		}
		for _, a := range snap.Out(src) {
			c := copyNode(a.Child)
			if err := out.AddArc(id, a.Label, c); err != nil {
				panic(fmt.Sprintf("qss: packaging: %v", err))
			}
		}
		return id
	}
	for _, row := range res.Rows {
		for _, cell := range row.Cells {
			if !cell.IsNode() {
				continue
			}
			label := cell.Label
			if label == "" {
				label = "result"
			}
			id := copyNode(cell.Node())
			if !out.HasArc(out.Root(), label, id) {
				if err := out.AddArc(out.Root(), label, id); err != nil {
					panic(fmt.Sprintf("qss: packaging: %v", err))
				}
			}
		}
	}
	return out, added
}

// pruneRemap drops remap entries whose packaged object has been deleted
// from the DOEM database, so a reappearing source object is treated as a
// fresh creation (ids are never reused, paper Section 2.2).
func (st *subState) pruneRemap() {
	cur := st.d.Current()
	for src, id := range st.remap {
		if !cur.Has(id) {
			delete(st.remap, src)
		}
	}
}

func maxID(db *oem.Database) oem.NodeID {
	var m oem.NodeID
	for _, id := range db.Nodes() {
		if id > m {
			m = id
		}
	}
	return m
}
