// Package incr implements delta-driven incremental subscription
// matching: given a standing Chorel/Lorel filter query and an applied
// change set, it decides — from the change set alone — whether the
// query's result can possibly be non-empty, so the service evaluates
// only the subscriptions a change actually touches instead of re-running
// every filter on every tick.
//
// The core observation is the *fresh-guard theorem*. QSS filter queries
// and triggers run with the step-time variables t[0] (this step) and
// t[-1] (the previous one) bound, and the DOEM manager stamps every
// annotation with the timestamp of the step that applied it, with step
// times strictly increasing. A top-level where-conjunct of the form
//
//	T > t[-1]    T > t[0]    T >= t[0]    T = t[0]
//
// (or mirrored), where T is an annotation time variable, therefore
// demands an annotation created by the *current* step: every annotation
// from earlier steps is stamped at or before t[-1] and fails the
// comparison. If the just-applied change set cannot have created any
// annotation the guard's generator binds, every candidate row fails that
// conjunct, the result is provably empty, and the evaluation can be
// skipped — producing output byte-identical to running the filter (no
// notification either way). Note `T >= t[-1]` is NOT a fresh guard: the
// previous step's annotations are stamped exactly t[-1] and pass it.
//
// The package deliberately only ever *skips provably-empty evaluations*;
// it never caches or replays result rows. Skipping is decided in three
// layers, each conservative (an "unsure" always falls back to full
// evaluation, never the other way around):
//
//  1. Fingerprint extraction (Extract): static analysis of the canonical
//     AST into fresh-guarded generators — the annotation kind
//     (cre/upd/add/rem), the exact label of the annotated step, and the
//     plain-label path prefix leading to it. Queries the analysis cannot
//     prove error-free (lorel.StaticallySafe — the planner's validator)
//     are flagged unanalyzable and always evaluated, because suppressing
//     an evaluation that would have *errored* would diverge from the
//     poll-diff path.
//  2. Delta summarization (Summarize): the applied change set reduced to
//     the touched node/arc sets plus their labels (for created/updated
//     nodes, the in-labels in the post-apply snapshot — the same arcs a
//     plain traversal reaches them through).
//  3. Matching (Fingerprint.Affected): a guard is matched only if the
//     delta contains an atom of its kind whose label agrees and — when
//     the prefix is walkable — whose touched node/arc can reach the root
//     backwards along the guard's label chain (the seed-frontier walk,
//     mirroring forward evaluation over the live graph). Any unmatched
//     guard proves the result empty.
//
// Index is the inverted subscription index over many fingerprints: it
// buckets subscription ids by one guard's (kind, label) so probing a
// delta costs O(touched buckets + affected ids), not O(total ids) —
// internal/trigger routes every applied change set through it, and
// internal/qss consults the per-subscription fingerprint on every poll.
// docs/incremental.md is the full writeup.
package incr

import (
	"strings"

	"repro/internal/lorel"
)

// Kind is an annotation kind a guard watches.
type Kind uint8

const (
	// KindCre matches node creations (change.CreNode).
	KindCre Kind = iota
	// KindUpd matches node value updates (change.UpdNode).
	KindUpd
	// KindAdd matches arc additions (change.AddArc).
	KindAdd
	// KindRem matches arc removals (change.RemArc).
	KindRem
)

func (k Kind) String() string {
	switch k {
	case KindCre:
		return "cre"
	case KindUpd:
		return "upd"
	case KindAdd:
		return "add"
	case KindRem:
		return "rem"
	}
	return "?"
}

// Guard is one fresh-guarded annotation generator of a filter query: a
// where-conjunct proved to demand a current-step annotation of this kind,
// bound by a generator whose annotated step carries this label at the end
// of this path prefix. A change set that cannot produce such an
// annotation leaves the guard unmatched, which proves the whole query
// result empty.
type Guard struct {
	// Kind is the annotation kind the generator binds.
	Kind Kind
	// Label is the exact label of the annotated step, or "" when the
	// step's label cannot be used for matching (glob patterns, or — for
	// node annotations — a chain whose traversal is not the live graph,
	// e.g. under an upstream <at T>). An empty label matches any delta
	// atom of the right kind.
	Label string
	// Prefix is the exact-label chain from the registered root to the
	// annotated step's parent; meaningful only when PrefixOK.
	Prefix []string
	// PrefixOK marks the prefix walkable: every step from the root to
	// here is a plain exact-label step over the live graph, so a touched
	// node/arc that cannot reach the root backwards along Prefix (over
	// the current reverse adjacency) cannot be bound by the generator.
	PrefixOK bool
}

// Fingerprint is the static analysis of one filter query.
type Fingerprint struct {
	// Analyzable reports that the query is in canonical form and
	// statically error-free. Unanalyzable queries must always be
	// evaluated (conservative fallback).
	Analyzable bool
	// Guards are the fresh-guarded generators. With no guards the query
	// can match arbitrarily old history and must always be evaluated;
	// with at least one, a delta matching every guard is required for a
	// non-empty result.
	Guards []Guard
}

// Extract statically analyzes a canonical query against a graph
// registration (the same name→graph map the evaluating engine will use;
// only the name set matters). It never errors: anything it cannot prove
// comes back as an unanalyzable or guardless fingerprint, which the
// caller must treat as "always evaluate".
func Extract(q *lorel.Query, graphs map[string]lorel.Graph) *Fingerprint {
	mExtracts.Inc()
	f := &Fingerprint{}
	if q == nil || !lorel.StaticallySafe(q, graphs) {
		mUnanalyzable.Inc()
		return f
	}
	f.Analyzable = true

	gens := append(append([]lorel.FromItem{}, q.From...), q.WhereGens...)

	// Per-generator chain state, consumed by generators downstream of it:
	// the exact labels from the root, whether a backward In() walk along
	// them mirrors forward traversal (walkOK), and whether traversal is
	// over the live graph with no <at T> time travel upstream (asOfFree).
	type chain struct {
		labels   []string
		walkOK   bool
		asOfFree bool
		resolved bool
	}
	chains := make([]chain, len(gens))
	varGen := make(map[string]int)
	timeVars := make(map[string]Guard)

	for i, g := range gens {
		parent := chain{walkOK: true, asOfFree: true, resolved: false}
		if gi, ok := varGen[g.Path.Head]; ok {
			parent = chains[gi]
		} else if _, ok := graphs[g.Path.Head]; ok {
			parent.resolved = true
		}
		if len(g.Path.Steps) == 0 {
			// Aliasing generator: the chain passes through unchanged.
			chains[i] = parent
			varGen[g.Var] = i
			continue
		}
		s := g.Path.Steps[0]
		exact := exactLabel(s)

		// Record the fresh-guard candidates this step's annotation
		// variables anchor. StaticallySafe has already rejected
		// annotations on group/# steps and misplaced annotation ops.
		if s.Arc != nil && (s.Arc.Op == lorel.OpAdd || s.Arc.Op == lorel.OpRem) && s.Arc.AtVar != "" {
			kind := KindAdd
			if s.Arc.Op == lorel.OpRem {
				kind = KindRem
			}
			gd := Guard{Kind: kind, Prefix: parent.labels, PrefixOK: parent.resolved && parent.walkOK}
			if exact {
				gd.Label = s.Label
			}
			timeVars[s.Arc.AtVar] = gd
		}
		if s.Node != nil && (s.Node.Op == lorel.OpCre || s.Node.Op == lorel.OpUpd) && s.Node.AtVar != "" {
			kind := KindCre
			if s.Node.Op == lorel.OpUpd {
				kind = KindUpd
			}
			// In-label matching for a touched node is sound only when the
			// generator reaches it through a live arc carrying exactly
			// this label: a plain exact step with no arc annotation on it
			// and no time travel upstream.
			byLabel := parent.asOfFree && s.Arc == nil && exact && !s.Hash && s.Group == nil
			gd := Guard{Kind: kind, Prefix: parent.labels}
			if byLabel {
				gd.Label = s.Label
				gd.PrefixOK = parent.resolved && parent.walkOK
			}
			timeVars[s.Node.AtVar] = gd
		}

		// Chain state for downstream generators.
		stepWalkOK := s.Arc == nil && s.Group == nil && !s.Hash && exact &&
			(s.Node == nil || s.Node.Op == lorel.OpCre || s.Node.Op == lorel.OpUpd)
		next := chain{
			labels:   append(append([]string(nil), parent.labels...), s.Label),
			walkOK:   parent.walkOK && stepWalkOK,
			asOfFree: parent.asOfFree && (s.Arc == nil || s.Arc.Op != lorel.OpAt) && (s.Node == nil || s.Node.Op != lorel.OpAt),
			resolved: parent.resolved,
		}
		chains[i] = next
		varGen[g.Var] = i
	}

	// Scan the top-level where-conjuncts for fresh guards over the
	// recorded annotation time variables.
	for _, c := range conjuncts(q.Where) {
		v, ok := freshComparison(c)
		if !ok {
			continue
		}
		if gd, bound := timeVars[v]; bound {
			f.Guards = append(f.Guards, gd)
		}
	}
	return f
}

// Guarded reports whether the fingerprint can ever suppress an
// evaluation (analyzable with at least one fresh guard).
func (f *Fingerprint) Guarded() bool {
	return f != nil && f.Analyzable && len(f.Guards) > 0
}

// exactLabel mirrors the evaluator's glob test: quoted labels are always
// literal, unquoted ones only when they contain no % wildcard.
func exactLabel(s *lorel.PathStep) bool {
	return s.Quoted || !strings.Contains(s.Label, "%")
}

// conjuncts flattens the top-level "and" tree of a where clause.
func conjuncts(where lorel.Expr) []lorel.Expr {
	if where == nil {
		return nil
	}
	var out []lorel.Expr
	var flatten func(lorel.Expr)
	flatten = func(e lorel.Expr) {
		if x, ok := e.(*lorel.BinExpr); ok && x.Op == "and" {
			flatten(x.L)
			flatten(x.R)
			return
		}
		out = append(out, e)
	}
	flatten(where)
	return out
}

// freshComparison recognizes a fresh-guard conjunct and returns the time
// variable it constrains. Valid shapes, with V a bare variable and the
// mirrored forms handled too:
//
//	V > t[-1]    V > t[0]    V >= t[0]    V = t[0]
//
// `V >= t[-1]` is rejected: annotations of the previous step are stamped
// exactly t[-1] and satisfy it without any current-step change.
func freshComparison(c lorel.Expr) (string, bool) {
	b, ok := c.(*lorel.BinExpr)
	if !ok {
		return "", false
	}
	v, op, k, ok := normalizeCmp(b)
	if !ok {
		return "", false
	}
	switch op {
	case ">":
		return v, k == 0 || k == -1
	case ">=", "=":
		return v, k == 0
	}
	return "", false
}

// normalizeCmp extracts (variable, op, time index) from a comparison
// between a bare variable and a t[k] reference, normalizing so the
// variable is on the left ("t[-1] < V" becomes "V > t[-1]").
func normalizeCmp(b *lorel.BinExpr) (v string, op string, k int, ok bool) {
	if v, ok = bareVar(b.L); ok {
		if t, tok := timeRef(b.R); tok {
			return v, b.Op, t, true
		}
		return "", "", 0, false
	}
	if v, ok = bareVar(b.R); ok {
		if t, tok := timeRef(b.L); tok {
			return v, flipCmp(b.Op), t, true
		}
	}
	return "", "", 0, false
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

func bareVar(e lorel.Expr) (string, bool) {
	pv, ok := e.(*lorel.PathValueExpr)
	if !ok || pv.Path == nil || len(pv.Path.Steps) != 0 {
		return "", false
	}
	return pv.Path.Head, true
}

func timeRef(e lorel.Expr) (int, bool) {
	tr, ok := e.(*lorel.TimeRefExpr)
	if !ok {
		return 0, false
	}
	return tr.Index, true
}
