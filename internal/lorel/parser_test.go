package lorel

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParsePaperQueries(t *testing.T) {
	// Every query text that appears in the paper must parse.
	queries := []string{
		// Example 4.1
		`select guide.restaurant where guide.restaurant.price < 20.5`,
		// Example 4.2
		`select guide.<add>restaurant`,
		// Example 4.3, surface and rewritten forms
		`select guide.<add at T>restaurant where T < 4Jan97`,
		`select R from guide.<add at T>restaurant R where T < 4Jan97`,
		// Example 4.4
		`select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`,
		// Example 4.5
		`select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`,
		// Example 5.1 (translated form over the encoding)
		`select N from guide.restaurant R, R.name N where exists H in R.&price-history : exists P in H.&target : exists T in H.&add : T >= 1Jan97 and P.&val = "moderate"`,
		// Section 6 polling and filter queries
		`select guide.restaurant where guide.restaurant.address.# like "%Lytton%"`,
		`select LyttonRestaurants.restaurant<cre at T> where T > t[-1]`,
		`select Restaurants.restaurant<cre at T> where T > t[-1]`,
	}
	for _, src := range queries {
		if _, err := Parse(src); err != nil {
			t.Errorf("paper query failed to parse: %q\n  %v", src, err)
		}
	}
}

func TestParseStructure(t *testing.T) {
	q := mustParse(t, `select N, T from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97`)
	if len(q.Select) != 2 || len(q.From) != 2 || q.Where == nil {
		t.Fatalf("shape: select=%d from=%d where=%v", len(q.Select), len(q.From), q.Where != nil)
	}
	p := q.From[0].Path
	if p.Head != "guide" || len(p.Steps) != 2 {
		t.Fatalf("path: head=%q steps=%d", p.Head, len(p.Steps))
	}
	last := p.Steps[1]
	if last.Label != "price" || last.Node == nil || last.Node.Op != OpUpd {
		t.Fatalf("last step: %+v", last)
	}
	if last.Node.AtVar != "T" || last.Node.ToVar != "NV" || last.Node.FromVar != "" {
		t.Errorf("upd vars: at=%q from=%q to=%q", last.Node.AtVar, last.Node.FromVar, last.Node.ToVar)
	}
}

func TestParseArcAnnotation(t *testing.T) {
	q := mustParse(t, `select guide.<add at T>restaurant`)
	pv, ok := q.Select[0].Expr.(*PathValueExpr)
	if !ok {
		t.Fatalf("select item is %T", q.Select[0].Expr)
	}
	st := pv.Path.Steps[0]
	if st.Arc == nil || st.Arc.Op != OpAdd || st.Arc.AtVar != "T" {
		t.Fatalf("arc annotation: %+v", st.Arc)
	}
	if st.Node != nil {
		t.Error("unexpected node annotation")
	}
}

func TestParseVirtualAt(t *testing.T) {
	q := mustParse(t, `select guide.<at 4Jan97>restaurant.price<at T2>`)
	pv := q.Select[0].Expr.(*PathValueExpr)
	if pv.Path.Steps[0].Arc == nil || pv.Path.Steps[0].Arc.Op != OpAt {
		t.Fatal("virtual arc at missing")
	}
	if pv.Path.Steps[1].Node == nil || pv.Path.Steps[1].Node.Op != OpAt {
		t.Fatal("virtual node at missing")
	}
}

func TestParseComparisonVsAnnotation(t *testing.T) {
	// '<' followed by a non-keyword must be a comparison.
	q := mustParse(t, `select R from guide.restaurant R where R.price < 20.5`)
	be, ok := q.Where.(*BinExpr)
	if !ok || be.Op != "<" {
		t.Fatalf("where = %v", q.Where)
	}
	// '<' followed by an annotation keyword binds to the path.
	q = mustParse(t, `select R from guide.restaurant R where R.price<upd at T> = 1`)
	be = q.Where.(*BinExpr)
	pv := be.L.(*PathValueExpr)
	if pv.Path.Steps[0].Node == nil || pv.Path.Steps[0].Node.Op != OpUpd {
		t.Fatal("upd annotation not attached to path")
	}
}

func TestParseHyphenatedLabels(t *testing.T) {
	q := mustParse(t, `select guide.restaurant.nearby-eats.name`)
	pv := q.Select[0].Expr.(*PathValueExpr)
	if pv.Path.Steps[1].Label != "nearby-eats" {
		t.Errorf("label = %q, want nearby-eats", pv.Path.Steps[1].Label)
	}
	// With spaces, '-' is subtraction.
	q = mustParse(t, `select X where X.a - 5 > 0`)
	be := q.Where.(*BinExpr)
	inner, ok := be.L.(*BinExpr)
	if !ok || inner.Op != "-" {
		t.Fatalf("subtraction not parsed: %v", q.Where)
	}
}

func TestParseAmpersandLabels(t *testing.T) {
	q := mustParse(t, `select X.&val from db.&price-history H, H.&target X`)
	pv := q.Select[0].Expr.(*PathValueExpr)
	if pv.Path.Steps[0].Label != "&val" {
		t.Errorf("label = %q", pv.Path.Steps[0].Label)
	}
	if q.From[0].Path.Steps[0].Label != "&price-history" {
		t.Errorf("label = %q", q.From[0].Path.Steps[0].Label)
	}
}

func TestParseQuotedLabel(t *testing.T) {
	q := mustParse(t, `select x."strange label!".y`)
	pv := q.Select[0].Expr.(*PathValueExpr)
	if !pv.Path.Steps[0].Quoted || pv.Path.Steps[0].Label != "strange label!" {
		t.Errorf("quoted label = %+v", pv.Path.Steps[0])
	}
}

func TestParseHashWildcard(t *testing.T) {
	q := mustParse(t, `select guide.restaurant.address.#`)
	pv := q.Select[0].Expr.(*PathValueExpr)
	if !pv.Path.Steps[2].Hash {
		t.Error("hash step not recognized")
	}
}

func TestParseTimeRef(t *testing.T) {
	q := mustParse(t, `select R from db.r R where T > t[-1] and T <= t[0]`)
	and := q.Where.(*BinExpr)
	l := and.L.(*BinExpr).R.(*TimeRefExpr)
	r := and.R.(*BinExpr).R.(*TimeRefExpr)
	if l.Index != -1 || r.Index != 0 {
		t.Errorf("timeref indices = %d, %d", l.Index, r.Index)
	}
}

func TestParseTimestampLiterals(t *testing.T) {
	q := mustParse(t, `select R from db.r R where T >= 1Jan97`)
	cmp := q.Where.(*BinExpr)
	c, ok := cmp.R.(*ConstExpr)
	if !ok {
		t.Fatalf("rhs = %T", cmp.R)
	}
	if c.Val.String() != "1Jan97" {
		t.Errorf("timestamp literal = %s", c.Val)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`from x`,
		`select`,
		`select x where`,
		`select x from`,
		`select x..y`,
		`select x.<bogus>y`,
		`select x.y<add>z`,      // add must precede a label
		`select x.<cre>y`,       // cre must follow a label
		`select x.y where z =`,  // missing operand
		`select "unterminated`,  // bad string
		`select x.y<upd at>`,    // missing variable
		`select x.#<cre>`,       // annotation on wildcard
		`select 3x`,             // malformed literal (lexes as time, unparseable)
		`select x where (a = 1`, // unbalanced paren
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`SELECT x FROM db.y x WHERE x = 1 AND 2 = 2`); err != nil {
		t.Errorf("uppercase keywords rejected: %v", err)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		`select guide.<add at T>restaurant where T < 4Jan97`,
		`select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N where T >= 1Jan97 and NV > 15`,
		`select N from guide.restaurant R where exists P in R.price : P = 10`,
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", rendered, err)
			continue
		}
		if q2.String() != rendered {
			t.Errorf("String round trip unstable:\n1: %s\n2: %s", rendered, q2.String())
		}
	}
}

func TestHasAnnotations(t *testing.T) {
	if mustParse(t, `select guide.restaurant`).HasAnnotations() {
		t.Error("plain Lorel query reported as Chorel")
	}
	if !mustParse(t, `select guide.<add>restaurant`).HasAnnotations() {
		t.Error("Chorel query not detected")
	}
	if !mustParse(t, `select R from g.r R where R.price<upd> = 1`).HasAnnotations() {
		t.Error("where-clause annotation not detected")
	}
}

func TestCanonicalizeHoistsSelectPath(t *testing.T) {
	q := mustParse(t, `select guide.<add at T>restaurant`)
	if err := Canonicalize(q); err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 {
		t.Fatalf("from items after canonicalization = %d, want 1", len(q.From))
	}
	pv, ok := q.Select[0].Expr.(*PathValueExpr)
	if !ok || len(pv.Path.Steps) != 0 {
		t.Fatalf("select not rewritten to variable: %s", q.Select[0].Expr)
	}
	if pv.Path.Head != q.From[0].Var {
		t.Error("select variable does not match hoisted from variable")
	}
	if q.Select[0].Label != "restaurant" {
		t.Errorf("default label = %q, want restaurant", q.Select[0].Label)
	}
}

func TestCanonicalizeHoistsWherePaths(t *testing.T) {
	q := mustParse(t, `select N from guide.restaurant R, R.name N where R.<add at T>price = "moderate" and T >= 1Jan97`)
	if err := Canonicalize(q); err != nil {
		t.Fatal(err)
	}
	if len(q.WhereGens) != 1 {
		t.Fatalf("where generators = %d, want 1", len(q.WhereGens))
	}
	gen := q.WhereGens[0]
	if gen.Path.Head != "R" || gen.Path.Steps[0].Arc == nil {
		t.Errorf("hoisted generator = %s", gen.Path)
	}
	if !strings.Contains(q.Where.String(), gen.Var) {
		t.Error("where clause does not reference the hoisted variable")
	}
}

func TestCanonicalizeCompletesAnnotVars(t *testing.T) {
	q := mustParse(t, `select guide.<add>restaurant`)
	if err := Canonicalize(q); err != nil {
		t.Fatal(err)
	}
	st := q.From[0].Path.Steps[0]
	if st.Arc.AtVar == "" {
		t.Error("add annotation variable not completed")
	}
}

func TestCanonicalizeDefaultAnnotationLabels(t *testing.T) {
	q := mustParse(t, `select N, T, NV from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N`)
	if err := Canonicalize(q); err != nil {
		t.Fatal(err)
	}
	want := []string{"name", "update-time", "new-value"}
	for i, w := range want {
		if q.Select[i].Label != w {
			t.Errorf("select[%d] label = %q, want %q", i, q.Select[i].Label, w)
		}
	}
}
