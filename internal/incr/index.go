package incr

import (
	"sort"
	"sync"

	"repro/internal/oem"
)

// bucketKey addresses one inverted-index bucket: all subscriptions whose
// chosen guard watches this annotation kind under this exact label ("" is
// the kind's wildcard bucket).
type bucketKey struct {
	kind  Kind
	label string
}

// Index is the inverted subscription index: fingerprint → ids, probed
// with a delta to recover the affected subset in O(touched buckets +
// candidates) instead of O(total subscriptions). Each guarded
// fingerprint is filed under ONE of its guards (the most selective); the
// remaining guards still apply at probe time via the full Affected
// refinement, so bucketing only ever over-approximates. Unguarded and
// unanalyzable fingerprints live in the always-set and are returned by
// every probe. Safe for concurrent use.
type Index struct {
	mu      sync.RWMutex
	always  map[string]bool
	buckets map[bucketKey]map[string]bool
	fps     map[string]*Fingerprint
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		always:  make(map[string]bool),
		buckets: make(map[bucketKey]map[string]bool),
		fps:     make(map[string]*Fingerprint),
	}
}

// chooseBucket picks the bucket a guarded fingerprint files under: the
// first guard with an exact label, else the first guard's wildcard
// bucket. The label is usable precisely when Guard.Label is non-empty —
// Extract only sets it when label matching is sound for that guard.
func chooseBucket(f *Fingerprint) bucketKey {
	k := bucketKey{kind: f.Guards[0].Kind}
	for _, g := range f.Guards {
		if g.Label != "" {
			return bucketKey{kind: g.Kind, label: g.Label}
		}
	}
	return k
}

// Put files (or re-files) id under its fingerprint. A nil fingerprint is
// treated as unanalyzable.
func (ix *Index) Put(id string, f *Fingerprint) {
	if f == nil {
		f = &Fingerprint{}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
	ix.fps[id] = f
	if !f.Guarded() {
		ix.always[id] = true
		return
	}
	key := chooseBucket(f)
	b := ix.buckets[key]
	if b == nil {
		b = make(map[string]bool)
		ix.buckets[key] = b
	}
	b[id] = true
}

// Remove drops id from the index.
func (ix *Index) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index) removeLocked(id string) {
	f, ok := ix.fps[id]
	if !ok {
		return
	}
	delete(ix.fps, id)
	if !f.Guarded() {
		delete(ix.always, id)
		return
	}
	key := chooseBucket(f)
	if b := ix.buckets[key]; b != nil {
		delete(b, id)
		if len(b) == 0 {
			delete(ix.buckets, key)
		}
	}
}

// Len reports the number of indexed subscriptions.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.fps)
}

// Probe returns the sorted ids of every subscription the delta can
// affect: the always-set plus the hit buckets, refined per candidate by
// the full Affected check (which applies the guards the bucket key
// ignored, including prefix walks). cur is the post-apply snapshot.
func (ix *Index) Probe(d *Delta, cur *oem.Database) []string {
	mProbes.Inc()
	ix.mu.RLock()
	candidates := make(map[string]bool, len(ix.always))
	for id := range ix.always {
		candidates[id] = true
	}
	for _, key := range ix.hitKeysLocked(d) {
		for id := range ix.buckets[key] {
			candidates[id] = true
		}
	}
	// Snapshot the candidate fingerprints so refinement runs outside the
	// lock (walks can touch a lot of graph).
	type cand struct {
		id string
		f  *Fingerprint
	}
	cands := make([]cand, 0, len(candidates))
	for id := range candidates {
		cands = append(cands, cand{id, ix.fps[id]})
	}
	ix.mu.RUnlock()

	out := make([]string, 0, len(cands))
	for _, c := range cands {
		if c.f.Affected(d, cur) {
			out = append(out, c.id)
		}
	}
	sort.Strings(out)
	mProbeHits.Add(int64(len(out)))
	return out
}

// hitKeysLocked lists the bucket keys the delta touches: for each kind
// present, the kind's wildcard bucket plus the exact-label buckets of the
// delta's labels of that kind. Without a snapshot, node in-labels are
// unknown, so every cre/upd label bucket counts as hit.
func (ix *Index) hitKeysLocked(d *Delta) []bucketKey {
	var keys []bucketKey
	add := func(k bucketKey) {
		if _, ok := ix.buckets[k]; ok {
			keys = append(keys, k)
		}
	}
	for _, a := range d.Add {
		add(bucketKey{KindAdd, a.Label})
	}
	for _, a := range d.Rem {
		add(bucketKey{KindRem, a.Label})
	}
	if d.HasSnapshot {
		for _, n := range d.Cre {
			for _, l := range n.Labels {
				add(bucketKey{KindCre, l})
			}
		}
		for _, n := range d.Upd {
			for _, l := range n.Labels {
				add(bucketKey{KindUpd, l})
			}
		}
	} else {
		for key := range ix.buckets {
			if (key.kind == KindCre && len(d.Cre) > 0) || (key.kind == KindUpd && len(d.Upd) > 0) {
				keys = append(keys, key)
			}
		}
	}
	for k := KindCre; k <= KindRem; k++ {
		if d.has(k) {
			add(bucketKey{kind: k})
		}
	}
	return keys
}
