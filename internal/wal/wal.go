// Package wal implements a durable, segmented write-ahead log of OEM change
// sets — the on-disk form of the paper's central object, an OEM history
// (Section 2.2): an append-only sequence of timestamped change sets.
//
// Records are length-prefixed binary frames with a CRC-32C each (see
// record.go); payloads are the stable binary encoding of history steps from
// internal/change. The log is split into segment files that rotate at a
// configurable size. Recovery scans segments in order, truncates the first
// torn or corrupt frame and everything after it (a torn tail is discarded,
// never misapplied), and replays the surviving prefix. Checkpoints snapshot
// the accumulated DOEM database and drop the segments they cover — the
// paper's Section 6.1 space-for-accuracy trade realized as log compaction.
//
// A Log stores opaque payloads; the typed layer in doemlog.go reads and
// writes history steps and DOEM checkpoints.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append (durable, slowest).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, piggybacked
	// on appends; a crash can lose the records since the last sync, but
	// recovery still yields a valid prefix.
	SyncInterval
	// SyncNever leaves syncing to the OS (fastest; crash loses the OS
	// write-back window).
	SyncNever
)

// Options configures a Log. The zero value is usable: 4 MiB segments with
// SyncAlways.
type Options struct {
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes. Default 4 MiB.
	SegmentSize int64
	// Sync is the fsync policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the maximum time between fsyncs under SyncInterval.
	// Default 100ms.
	SyncEvery time.Duration
}

func (o *Options) withDefaults() Options {
	var opt Options
	if o != nil {
		opt = *o
	}
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = 4 << 20
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = 100 * time.Millisecond
	}
	return opt
}

const segmentExt = ".seg"

// Log is a segmented append-only record log in one directory. Methods are
// safe for concurrent use.
type Log struct {
	dir string
	opt Options

	mu         sync.Mutex
	active     *os.File // nil until the first append after Open/Checkpoint
	activePath string
	activeSize int64
	seq        uint64 // sequence of the last appended record (0 = none yet)
	ckptSeq    uint64 // records with seq <= ckptSeq are covered by the checkpoint
	ckptData   []byte
	hasCkpt    bool
	lastSync   time.Time
	closed     bool
}

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Open opens (creating if necessary) the log in dir and runs recovery:
// it loads the latest checkpoint, scans the segment files in order, and
// truncates the log at the first torn, corrupt, or out-of-sequence record.
func Open(dir string, opt *Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opt: opt.withDefaults()}
	if err := l.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := l.recoverSegments(); err != nil {
		return nil, err
	}
	return l, nil
}

// segmentPath names the segment whose first record has sequence firstSeq.
func (l *Log) segmentPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%016x%s", firstSeq, segmentExt))
}

// listSegments returns the segment file names in ascending first-sequence
// order, with their parsed first sequences.
func (l *Log) listSegments() ([]string, []uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var paths []string
	var firsts []uint64
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, segmentExt) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentExt), 16, 64)
		if err != nil {
			continue // not one of ours
		}
		paths = append(paths, filepath.Join(l.dir, name))
		firsts = append(firsts, first)
	}
	sort.Sort(&segmentSort{paths, firsts})
	return paths, firsts, nil
}

type segmentSort struct {
	paths  []string
	firsts []uint64
}

func (s *segmentSort) Len() int           { return len(s.paths) }
func (s *segmentSort) Less(i, j int) bool { return s.firsts[i] < s.firsts[j] }
func (s *segmentSort) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.firsts[i], s.firsts[j] = s.firsts[j], s.firsts[i]
}

// recoverSegments scans the segments, validating every frame. On the first
// torn or corrupt frame it truncates that segment at the frame boundary and
// deletes all later segments: a crash can only tear the tail, so everything
// before the tear is a valid prefix and everything after it is garbage.
// The last surviving segment becomes the active one.
func (l *Log) recoverSegments() error {
	paths, firsts, err := l.listSegments()
	if err != nil {
		return err
	}
	l.seq = l.ckptSeq
	var torn bool
	var keptPath string // last segment kept on disk
	for i, path := range paths {
		if torn {
			// Everything after a tear is unreachable garbage.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: dropping post-tear segment: %w", err)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if firsts[i] > l.seq+1 {
			// A gap before this segment (a lost file): nothing at or
			// after it can be a contiguous extension of the prefix.
			torn = true
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("wal: dropping post-gap segment: %w", err)
			}
			continue
		}
		expect := firsts[i]
		off := 0
		for off < len(data) {
			seq, _, n, err := decodeFrame(data[off:])
			if err != nil || seq != expect {
				torn = true
				if terr := truncateFile(path, int64(off)); terr != nil {
					return terr
				}
				break
			}
			expect = seq + 1
			off += n
		}
		if expect > firsts[i] {
			// Segment holds at least one valid record.
			if last := expect - 1; last > l.seq {
				l.seq = last
			}
		}
		keptPath = path
	}
	if keptPath != "" {
		// Reopen the last surviving segment for appending.
		f, err := os.OpenFile(keptPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		l.active, l.activePath, l.activeSize = f, keptPath, st.Size()
	}
	if torn {
		if err := syncDir(l.dir); err != nil {
			return err
		}
	}
	return nil
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return f.Sync()
}

// Append writes one record with the next sequence number and returns it.
// Durability follows the configured SyncPolicy.
func (l *Log) Append(payload []byte) (uint64, error) {
	start := obs.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	seq := l.seq + 1
	frame := appendFrame(nil, seq, payload)
	if err := l.rotateIfNeeded(int64(len(frame))); err != nil {
		return 0, err
	}
	if _, err := l.active.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.activeSize += int64(len(frame))
	l.seq = seq
	mBytes.Add(int64(len(frame)))
	switch l.opt.Sync {
	case SyncAlways:
		if err := l.syncActive(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opt.SyncEvery {
			if err := l.syncActive(); err != nil {
				return 0, fmt.Errorf("wal: sync: %w", err)
			}
			l.lastSync = time.Now()
		}
	}
	mAppends.Inc()
	mAppendNs.ObserveSince(start)
	return seq, nil
}

// rotateIfNeeded opens a fresh segment when there is none or when writing
// frameLen more bytes would overflow the size budget of a non-empty one.
func (l *Log) rotateIfNeeded(frameLen int64) error {
	if l.active != nil && (l.activeSize == 0 || l.activeSize+frameLen <= l.opt.SegmentSize) {
		return nil
	}
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
		l.active = nil
	}
	path := l.segmentPath(l.seq + 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	mSegments.Inc()
	l.active, l.activePath, l.activeSize = f, path, 0
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active == nil {
		return nil
	}
	if err := l.syncActive(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = time.Now()
	return nil
}

// Close syncs and closes the log. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	err := l.active.Close()
	l.active = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// LastSeq returns the sequence number of the most recent record (the
// checkpoint sequence if no records follow it; 0 for an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Replay calls fn for every record after the checkpoint, in sequence order.
// The payload slice is only valid during the call.
//
// Concurrency contract: Replay holds the log lock for the entire scan, so
// (a) fn must not call back into l — any Log method would self-deadlock —
// and (b) concurrent Appends block until the replay finishes. That is the
// right trade for recovery, where the caller owns the log and wants one
// consistent full pass. Tail-followers (replication streams) that must not
// stall the writer should use Records instead, which bounds itself to a
// LastSeq snapshot and scans without the lock; see tail.go for the safety
// argument.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	paths, _, err := l.listSegments()
	if err != nil {
		return err
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		off := 0
		for off < len(data) {
			seq, payload, n, err := decodeFrame(data[off:])
			if err != nil {
				return fmt.Errorf("wal: replay %s at offset %d: %w", filepath.Base(path), off, err)
			}
			off += n
			if seq <= l.ckptSeq {
				continue
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// syncDir fsyncs a directory so entry creations, renames, and removals
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
