package htmldiff

import (
	"strings"
	"testing"

	"repro/internal/oem"
	"repro/internal/value"
)

const guideV1 = `
<html><body>
<h1>Restaurant Guide</h1>
<ul>
<li><b>Bangkok Cuisine</b> Thai, price 10, 120 Lytton</li>
<li><b>Janta</b> Indian, moderate, parking at Lytton lot 2</li>
</ul>
</body></html>`

const guideV2 = `
<html><body>
<h1>Restaurant Guide</h1>
<ul>
<li><b>Bangkok Cuisine</b> Thai, price 20, 120 Lytton</li>
<li><b>Janta</b> Indian, moderate</li>
<li><b>Hakata</b> need info</li>
</ul>
</body></html>`

func TestParseBasicStructure(t *testing.T) {
	db := ToOEM(guideV1)
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// root -> html wrapper (#root) -> html element -> body -> h1, ul.
	top := db.OutLabeled(db.Root(), "html")
	if len(top) != 1 {
		t.Fatalf("top arcs = %d", len(top))
	}
	html := db.OutLabeled(top[0].Child, "html")
	if len(html) != 1 {
		t.Fatalf("html elements = %d", len(html))
	}
	body := db.OutLabeled(html[0].Child, "body")
	if len(body) != 1 {
		t.Fatalf("body elements = %d", len(body))
	}
	uls := db.OutLabeled(body[0].Child, "ul")
	if len(uls) != 1 {
		t.Fatalf("ul elements = %d", len(uls))
	}
	lis := db.OutLabeled(uls[0].Child, "li")
	if len(lis) != 2 {
		t.Fatalf("li elements = %d, want 2", len(lis))
	}
}

func TestParseAttributes(t *testing.T) {
	db := ToOEM(`<a href="http://x" class=plain id='q'>link</a>`)
	top := db.OutLabeled(db.Root(), "html")[0].Child
	as := db.OutLabeled(top, "a")
	if len(as) != 1 {
		t.Fatalf("a elements = %d", len(as))
	}
	a := as[0].Child
	for attr, want := range map[string]string{"@href": "http://x", "@class": "plain", "@id": "q"} {
		arcs := db.OutLabeled(a, attr)
		if len(arcs) != 1 || !db.MustValue(arcs[0].Child).Equal(value.Str(want)) {
			t.Errorf("attribute %s wrong", attr)
		}
	}
	txt := db.OutLabeled(a, TextLabel)
	if len(txt) != 1 || !db.MustValue(txt[0].Child).Equal(value.Str("link")) {
		t.Error("text child wrong")
	}
}

func TestParseTolerance(t *testing.T) {
	cases := []string{
		``,
		`plain text only`,
		`<p>unclosed paragraph`,
		`<ul><li>one<li>two<li>three</ul>`,   // implicit close
		`</div>stray close`,                  // stray close tag
		`<b>bold <i>both</b> italic</i>`,     // misnested
		`<img src=x><br><hr>`,                // void elements
		`<script>if (a<b) { x(); }</script>`, // raw text with <
		`<!-- comment --><!DOCTYPE html><p>x</p>`,
		`<p class>degenerate attr</p>`,
		`< notatag`,
		`<a href="unterminated`,
		`&amp; &lt; &unknown; &nbsp;`,
	}
	for _, src := range cases {
		db := ToOEM(src)
		if err := db.Validate(); err != nil {
			t.Errorf("ToOEM(%q) produced invalid db: %v", src, err)
		}
	}
}

func TestParseImplicitClose(t *testing.T) {
	db := ToOEM(`<ul><li>one<li>two</ul>`)
	top := db.OutLabeled(db.Root(), "html")[0].Child
	ul := db.OutLabeled(top, "ul")[0].Child
	lis := db.OutLabeled(ul, "li")
	if len(lis) != 2 {
		t.Fatalf("li count = %d, want 2 (implicit close)", len(lis))
	}
	// "two" must be inside the second li, not nested in the first.
	second := lis[1].Child
	txt := db.OutLabeled(second, TextLabel)
	if len(txt) != 1 || !db.MustValue(txt[0].Child).Equal(value.Str("two")) {
		t.Error("second li content wrong")
	}
}

func TestParseEntities(t *testing.T) {
	db := ToOEM(`<p>a &amp; b &lt;c&gt;</p>`)
	top := db.OutLabeled(db.Root(), "html")[0].Child
	p := db.OutLabeled(top, "p")[0].Child
	txt := db.OutLabeled(p, TextLabel)
	if got := db.MustValue(txt[0].Child); !got.Equal(value.Str("a & b <c>")) {
		t.Errorf("entity decoding = %s", got)
	}
}

func TestDiffIdenticalVersions(t *testing.T) {
	res, err := Diff(guideV1, guideV1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total() != 0 {
		t.Errorf("cost on identical versions = %+v", res.Cost)
	}
}

func TestDiffGuideVersions(t *testing.T) {
	res, err := Diff(guideV1, guideV2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total() == 0 {
		t.Fatal("no changes detected between different versions")
	}
	// The price text change should be detected as an update (matched li),
	// not a delete+insert of the whole entry.
	if res.Cost.Updates == 0 {
		t.Errorf("cost = %+v, want at least one text update", res.Cost)
	}
	// The new Hakata entry is an insertion.
	if res.Cost.Creates == 0 {
		t.Errorf("cost = %+v, want creations for the new entry", res.Cost)
	}
}

func TestMarkupOutput(t *testing.T) {
	out, err := Markup(guideV1, guideV2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hd-legend",           // legend block (Figure 1's icon key)
		`<ins class="hd-ins"`, // insertion marker around Hakata
		"Hakata",
		"hd-upd-old", // changed text: old price visible
		"hd-upd-new",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markup missing %q", want)
		}
	}
	// The removed parking text of Janta appears struck through.
	if !strings.Contains(out, "hd-upd-old") && !strings.Contains(out, "hd-del") {
		t.Error("no deletion/update markers present")
	}
}

func TestMarkupEscapesText(t *testing.T) {
	out, err := Markup(`<p>safe</p>`, `<p>a < b & c</p>`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "&lt;") || !strings.Contains(out, "&amp; c") {
		t.Errorf("text not escaped in markup:\n%s", out)
	}
	if strings.Contains(out, "b & c") {
		t.Errorf("raw ampersand leaked into markup:\n%s", out)
	}
}

func TestToOEMDeterministic(t *testing.T) {
	a := ToOEM(guideV1)
	b := ToOEM(guideV1)
	if !oem.Isomorphic(a, b) {
		t.Error("same input parsed to different OEM graphs")
	}
}
