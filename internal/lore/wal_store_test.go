package lore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/segment"
	"repro/internal/wal"
)

// walGuide seeds a WAL store with a generated guide and applies its history
// through ApplySet; it returns the expected final DOEM.
func walGuide(t *testing.T, s *Store, name string) *doem.Database {
	t.Helper()
	initial, h := guidegen.GenerateHistory(3, 15, 12, 5)
	if err := s.PutDOEM(name, doem.New(initial)); err != nil {
		t.Fatal(err)
	}
	for _, step := range h {
		if err := s.ApplySet(name, step.At, step.Ops); err != nil {
			t.Fatal(err)
		}
	}
	want, err := doem.FromHistory(initial, h)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestWALStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(dir, &wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	want := walGuide(t, s, "guide")
	got, err := s.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("in-memory DOEM differs from FromHistory")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload: checkpoint + log replay must reconstruct the same database.
	s2, err := OpenWAL(dir, &wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got2, err := s2.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Error("DOEM changed across WAL-backed restart")
	}
}

func TestWALStoreCheckpointCompacts(t *testing.T) {
	if segment.Enabled() {
		// Segmented mode has no <name>.doemwal directory to inspect; its
		// checkpoint-compaction analogue is TestSegmentedStoreCheckpointSeals.
		t.Skip("checkpoint compaction layout is WAL-mode specific")
	}
	dir := t.TempDir()
	s, err := OpenWAL(dir, &wal.Options{SegmentSize: 256, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := walGuide(t, s, "guide")
	walDir := filepath.Join(dir, "guide"+walExt)
	if n := countSegments(t, walDir); n < 2 {
		t.Fatalf("want several segments before checkpoint, got %d", n)
	}
	if err := s.Checkpoint("guide"); err != nil {
		t.Fatal(err)
	}
	if n := countSegments(t, walDir); n != 0 {
		t.Errorf("%d segments survive a checkpoint, want 0", n)
	}
	s2, err := OpenWAL(dir, &wal.Options{SegmentSize: 256, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("DOEM changed across checkpoint + restart")
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".seg") {
			n++
		}
	}
	return n
}

func TestWALStoreDeleteRemovesLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(dir, &wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	walGuide(t, s, "guide")
	if err := s.Delete("guide"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "guide"+walExt)); !os.IsNotExist(err) {
		t.Errorf("wal directory survives Delete: %v", err)
	}
	if _, err := s.GetDOEM("guide"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted db: %v", err)
	}
}

func TestWALStorePutDOEMReplaces(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWAL(dir, &wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	walGuide(t, s, "guide")
	d := paperDOEM(t)
	if err := s.PutDOEM("guide", d); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenWAL(dir, &wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Error("PutDOEM did not replace the logged database")
	}
}

// TestSnapshotModeApplySet: without a WAL, ApplySet still persists by
// rewriting the snapshot.
func TestSnapshotModeApplySet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := walGuide(t, s, "guide")
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetDOEM("guide")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("DOEM changed across snapshot-mode restart")
	}
}

func TestOpenWALRequiresDir(t *testing.T) {
	if _, err := OpenWAL("", nil); err == nil {
		t.Fatal("OpenWAL accepted an empty directory")
	}
}
