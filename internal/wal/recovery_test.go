package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/doem"
	"repro/internal/guidegen"
)

// copyDir clones a flat directory (the shape of a log directory).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// truncateLogAt simulates a crash that tears the log's record stream at an
// arbitrary byte offset: bytes before offset (counted across segments in
// order) survive, everything after is lost.
func truncateLogAt(t *testing.T, l *Log, offset int64) {
	t.Helper()
	paths, _, err := l.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	remaining := offset
	for _, path := range paths {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case remaining >= st.Size():
			remaining -= st.Size()
		case remaining > 0:
			if err := os.Truncate(path, remaining); err != nil {
				t.Fatal(err)
			}
			remaining = 0
		default:
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func logBytes(t *testing.T, l *Log) int64 {
	t.Helper()
	paths, _, err := l.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	return total
}

// TestCrashRecoveryYieldsValidPrefix is the acceptance property: for a
// random history, appending N sets, tearing the log at an arbitrary byte
// offset, and recovering yields a prefix of the history whose replayed DOEM
// equals doem.FromHistory of that prefix. Torn tails are detected by CRC
// and discarded, never misapplied.
func TestCrashRecoveryYieldsValidPrefix(t *testing.T) {
	initial, h := guidegen.GenerateHistory(7, 20, 30, 6)

	golden := t.TempDir()
	l, err := Open(golden, &Options{SegmentSize: 512, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDOEM(doem.New(initial)); err != nil {
		t.Fatal(err)
	}
	for _, step := range h {
		if _, err := l.AppendStep(step.At, step.Ops); err != nil {
			t.Fatal(err)
		}
	}
	total := logBytes(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("empty golden log")
	}

	// Every step's DOEM, precomputed once: expect[k] = D(initial, h[:k]).
	expect := make([]*doem.Database, len(h)+1)
	expect[0] = doem.New(initial)
	for k := 1; k <= len(h); k++ {
		d, err := doem.FromHistory(initial, h[:k])
		if err != nil {
			t.Fatal(err)
		}
		expect[k] = d
	}

	rng := rand.New(rand.NewSource(42))
	offsets := []int64{0, 1, 4, total - 1, total}
	for len(offsets) < 40 {
		offsets = append(offsets, rng.Int63n(total+1))
	}
	for _, offset := range offsets {
		dir := t.TempDir()
		copyDir(t, golden, dir)
		crash, err := Open(dir, &Options{SegmentSize: 512, Sync: SyncNever})
		if err != nil {
			t.Fatalf("offset %d: pre-crash open: %v", offset, err)
		}
		truncateLogAt(t, crash, offset)
		// The handle was only used to enumerate segments; recovery happens
		// in a fresh Open, as after a real crash.
		crash.Close()

		rec, err := Open(dir, &Options{SegmentSize: 512, Sync: SyncNever})
		if err != nil {
			t.Fatalf("offset %d: recovery open: %v", offset, err)
		}
		got, err := rec.ReplayHistory()
		if err != nil {
			t.Fatalf("offset %d: replay: %v", offset, err)
		}
		k := len(got)
		if k > len(h) {
			t.Fatalf("offset %d: recovered %d steps from a %d-step history", offset, k, len(h))
		}
		for i := range got {
			if !got[i].At.Equal(h[i].At) || !reflect.DeepEqual(got[i].Ops, h[i].Ops) {
				t.Fatalf("offset %d: recovered step %d is not history step %d", offset, i, i)
			}
		}
		d, err := rec.ReplayDOEM()
		if err != nil {
			t.Fatalf("offset %d: replay DOEM: %v", offset, err)
		}
		if !d.Equal(expect[k]) {
			t.Fatalf("offset %d: recovered DOEM (prefix %d) differs from FromHistory", offset, k)
		}
		// Recovery is idempotent and the log remains appendable.
		if _, err := rec.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", offset, err)
		}
		rec.Close()
	}
}

// TestRecoveryAfterBitFlip corrupts a byte mid-log (not a pure truncation):
// the CRC must stop replay at the corrupted record.
func TestRecoveryAfterBitFlip(t *testing.T) {
	initial, h := guidegen.GenerateHistory(11, 10, 12, 5)
	dir := t.TempDir()
	l, err := Open(dir, &Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.CheckpointDOEM(doem.New(initial)); err != nil {
		t.Fatal(err)
	}
	for _, step := range h {
		if _, err := l.AppendStep(step.At, step.Ops); err != nil {
			t.Fatal(err)
		}
	}
	paths, _, err := l.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Open(dir, &Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got, err := rec.ReplayHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(h) {
		t.Fatalf("recovered %d steps despite a mid-log bit flip", len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Ops, h[i].Ops) {
			t.Fatalf("recovered step %d is not a prefix step", i)
		}
	}
	if _, err := rec.ReplayDOEM(); err != nil {
		t.Fatal(err)
	}
}
