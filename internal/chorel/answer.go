package chorel

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/lorel"
	"repro/internal/oem"
	"repro/internal/value"
)

// AnswerWithHistory materializes a query result as an OEM database in which
// every selected DOEM object is delivered *with its history*: the paper
// notes that "the presence of an object variable in a select clause ... is
// considered as a request for the DOEM objects satisfying the query ...
// [which] enables a user interface to display both the value and the
// history of the object" (end of Section 5.2).
//
// Each node cell is materialized as its Section 5.1 encoding subtree
// (&val, &cre, &upd history, live labels plus &l-history objects), copied
// out of the database's OEM encoding; value cells become plain atoms.
func (db *DB) AnswerWithHistory(res *lorel.Result) *oem.Database {
	enc := db.Encoding()
	out := oem.New()
	remap := make(map[oem.NodeID]oem.NodeID)
	for _, row := range res.Rows {
		parent := out.Root()
		if len(row.Cells) > 1 {
			p := out.CreateNode(value.Complex())
			mustAddArc(out, out.Root(), "answer", p)
			parent = p
		}
		for _, cell := range row.Cells {
			label := cell.Label
			if label == "" {
				label = "value"
			}
			switch {
			case cell.IsNull():
				continue
			case cell.IsNode():
				encID, ok := enc.Fwd[cell.Node()]
				if !ok {
					// A node from another registered graph: fall back to a
					// plain value copy.
					if v, okv := cell.Value(); okv {
						mustAddArc(out, parent, label, out.CreateNode(v))
					}
					continue
				}
				copied := copyEncoded(out, enc.DB, encID, remap)
				if !out.HasArc(parent, label, copied) {
					mustAddArc(out, parent, label, copied)
				}
			default:
				v, _ := cell.Value()
				mustAddArc(out, parent, label, out.CreateNode(v))
			}
		}
	}
	return out
}

// copyEncoded copies the subobject closure of an encoding object into dst,
// sharing across rows via remap.
func copyEncoded(dst *oem.Database, src *oem.Database, n oem.NodeID, remap map[oem.NodeID]oem.NodeID) oem.NodeID {
	if id, ok := remap[n]; ok {
		return id
	}
	id := dst.CreateNode(src.MustValue(n))
	remap[n] = id
	for _, a := range src.Out(n) {
		if a.Child == n && a.Label == encoding.LabelVal {
			// The complex-object &val self-loop.
			mustAddArc(dst, id, encoding.LabelVal, id)
			continue
		}
		c := copyEncoded(dst, src, a.Child, remap)
		mustAddArc(dst, id, a.Label, c)
	}
	return id
}

func mustAddArc(db *oem.Database, p oem.NodeID, l string, c oem.NodeID) {
	if err := db.AddArc(p, l, c); err != nil {
		panic(fmt.Sprintf("chorel: answer construction: %v", err))
	}
}
