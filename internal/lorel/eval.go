package lorel

import (
	"context"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/doem"
	"repro/internal/obs"
	"repro/internal/oem"
	"repro/internal/plan"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Engine evaluates Lorel and Chorel queries over registered graphs. Path
// expression heads resolve to registered database names ("guide", or a QSS
// polling-query name such as "LyttonRestaurants").
//
// Concurrency: one Engine is safe for concurrent use. Register,
// SetPollTimes and SetParallelism swap copy-on-write state under a lock;
// every evaluation snapshots that state once at the start, so concurrent
// Query/Eval calls never observe a partial update. The registered graphs
// themselves must honor the read-path contract documented on Graph:
// queries only read, so graphs may be shared across goroutines as long as
// nobody mutates them mid-query (lore.Store serializes mutation against
// readers; QSS and the trigger manager mutate only between evaluations).
type Engine struct {
	// mu guards the copy-on-write engine state below. The maps and slices
	// it protects are never mutated in place once published: writers build
	// a replacement and swap it, so a snapshot taken under RLock stays
	// valid for the whole evaluation.
	mu        sync.RWMutex
	graphs    map[string]Graph
	order     []string
	pollTimes []timestamp.Time
	workers   int

	// cache holds parsed-and-canonicalized queries by source text.
	// Evaluation never mutates a canonicalized AST, so cached queries are
	// shared across calls; standing queries (QSS filters, triggers) parse
	// once. Eviction is two-generation (see cacheInsert): cache is the hot
	// generation, cacheOld the previous one, probed on a miss.
	cacheMu  sync.Mutex
	cache    map[string]*Query
	cacheOld map[string]*Query

	// planning gates the cost-based planner (guarded by mu; see plan.go).
	// plans caches prepared plans by canonical-AST key, pinned to the
	// stats versions of the graphs they were costed against.
	planning bool
	planMu   sync.Mutex
	plans    map[string]*prepared
}

// cacheLimit bounds one generation of the parsed-query cache; total
// retention is at most two generations (2*cacheLimit entries). The old
// wholesale reset at the limit dropped the hot standing-query working set
// along with the churn that filled the cache, forcing every standing
// query to re-parse on its next poll; the two-generation scheme keeps
// anything re-requested within a generation's worth of churn (promotion
// on an old-generation hit) while still evicting one-off texts.
const cacheLimit = 256

// NewEngine returns an empty engine evaluating serially, with the
// cost-based planner on unless the package default disables it
// (REPRO_NOPLANNER / plan.SetEnabled).
func NewEngine() *Engine {
	return &Engine{
		graphs:   make(map[string]Graph),
		cache:    make(map[string]*Query),
		workers:  1,
		planning: plan.Enabled(),
		plans:    make(map[string]*prepared),
	}
}

// Register makes g available to queries under the given name. Registering
// an existing name replaces it. Queries already in flight keep evaluating
// against the graph set they started with.
func (e *Engine) Register(name string, g Graph) {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := make(map[string]Graph, len(e.graphs)+1)
	for n, gr := range e.graphs {
		next[n] = gr
	}
	if _, ok := next[name]; !ok {
		e.order = append(append([]string(nil), e.order...), name)
	}
	next[name] = g
	e.graphs = next
}

// Names returns the registered database names in registration order.
func (e *Engine) Names() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.order...)
}

// SetPollTimes installs the polling-time sequence used to resolve t[0],
// t[-1], ... (paper Section 6): t[0] is the last element, t[-i] counts back
// from it, and references beyond the start resolve to -infinity. Each
// evaluation snapshots the sequence when it starts, so concurrent queries
// each see one consistent sequence.
func (e *Engine) SetPollTimes(times []timestamp.Time) {
	copied := append([]timestamp.Time(nil), times...)
	e.mu.Lock()
	e.pollTimes = copied
	e.mu.Unlock()
}

// SetParallelism sets the number of worker goroutines used to evaluate the
// outermost from-clause binding stream. n <= 0 selects runtime.GOMAXPROCS.
// With n == 1 (the default) evaluation is strictly serial. Parallel
// results are byte-identical to serial ones: bindings are partitioned in
// order, per-worker shards preserve that order, and the merge deduplicates
// in the same sequence serial evaluation would.
func (e *Engine) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

// Parallelism returns the configured worker count.
func (e *Engine) Parallelism() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.workers
}

// Query parses, canonicalizes and evaluates a query. Parsed queries are
// cached by source text, so repeated evaluation of standing queries pays
// only for evaluation.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query with cancellation: evaluation aborts with the
// context's error shortly after ctx is cancelled.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	q, err := e.cachedQuery(ctx, src)
	if err != nil {
		return nil, err
	}
	return e.EvalContext(ctx, q)
}

// cachedQuery parses and canonicalizes src through the parse cache.
func (e *Engine) cachedQuery(ctx context.Context, src string) (*Query, error) {
	tr := obs.TraceFrom(ctx)
	e.cacheMu.Lock()
	q, ok := e.cache[src]
	if !ok {
		if oq, old := e.cacheOld[src]; old {
			// Old-generation hit: promote into the hot generation so a
			// standing query re-requested under churn survives rotation.
			q, ok = oq, true
			e.cacheInsert(src, q)
		}
	}
	e.cacheMu.Unlock()
	if ok {
		mCacheHits.Inc()
		tr.StartSpan("parse").EndNote("cache=hit")
	} else {
		mCacheMisses.Inc()
		sp := tr.StartSpan("parse")
		var err error
		q, err = Parse(src)
		if err != nil {
			sp.EndNote("error=parse")
			return nil, err
		}
		if err := Canonicalize(q); err != nil {
			sp.EndNote("error=canonicalize")
			return nil, err
		}
		sp.EndNote("cache=miss")
		e.cacheMu.Lock()
		e.cacheInsert(src, q)
		e.cacheMu.Unlock()
	}
	return q, nil
}

// cacheInsert adds one parsed query under cacheMu, rotating generations
// at the limit: the hot generation becomes the old one (dropping the
// previous old generation) and a fresh hot map starts. Entries touched
// at least once per generation of churn are re-promoted before the old
// generation is dropped, so the standing-query working set is never
// wholesale-evicted by one burst of distinct texts.
func (e *Engine) cacheInsert(src string, q *Query) {
	if len(e.cache) >= cacheLimit {
		e.cacheOld = e.cache
		e.cache = make(map[string]*Query, cacheLimit)
	}
	e.cache[src] = q
}

// binding is a variable binding: a graph node (optionally viewed as of a
// past time), an atomic value, or null (an empty existential generator).
type binding struct {
	kind    bindKind
	g       Graph
	id      oem.NodeID
	val     value.Value
	hasAsOf bool
	asOf    timestamp.Time
}

type bindKind uint8

const (
	bNull bindKind = iota
	bNode
	bValue
)

func nodeBinding(g Graph, id oem.NodeID) binding {
	return binding{kind: bNode, g: g, id: id}
}

func valueBinding(v value.Value) binding { return binding{kind: bValue, val: v} }

// valueOf reads the value a binding denotes for comparisons.
func (b binding) valueOf() (value.Value, bool) {
	switch b.kind {
	case bValue:
		return b.val, true
	case bNode:
		if b.hasAsOf {
			return b.g.ValueAt(b.id, b.asOf), true
		}
		return b.g.Value(b.id)
	default:
		return value.Value{}, false
	}
}

// key returns a dedup key for result rows. Value keys carry the value's
// kind so values of different kinds with identical renderings (Int(5) and
// Real(5) both print "5") cannot collide.
func (b binding) key() string { return string(b.appendKey(nil)) }

// appendKey appends b's dedup key to dst. Dedup runs once per candidate
// row, so this path sticks to strconv appends and avoids fmt.
func (b binding) appendKey(dst []byte) []byte {
	switch b.kind {
	case bNode:
		dst = append(dst, 'n')
		dst = strconv.AppendUint(dst, uint64(graphTag(b.g)), 16)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(b.id), 10)
		if b.hasAsOf {
			dst = append(dst, '@')
			dst = appendTimeKey(dst, b.asOf)
		}
		return dst
	case bValue:
		dst = append(dst, 'v')
		dst = strconv.AppendInt(dst, int64(b.val.Kind()), 10)
		dst = append(dst, ':')
		// Per-kind appends instead of b.val.String(): the kind tag plus the
		// row key's outer length prefix keep the key injective without the
		// quoting and formatting String() pays allocations for. Times use
		// the same unix-seconds key as as-of components.
		switch b.val.Kind() {
		case value.KindInt:
			return strconv.AppendInt(dst, b.val.AsInt(), 10)
		case value.KindString:
			return append(dst, b.val.AsString()...)
		case value.KindTime:
			return appendTimeKey(dst, b.val.AsTime())
		case value.KindReal:
			return strconv.AppendFloat(dst, b.val.AsReal(), 'g', -1, 64)
		case value.KindBool:
			return strconv.AppendBool(dst, b.val.AsBool())
		default:
			return append(dst, b.val.String()...)
		}
	default:
		return append(dst, "null"...)
	}
}

// visitKey is the comparable form of a binding's identity, used for the
// per-step frontier dedup where allocating string keys would dominate.
// All bindings in one frontier come from the same path head, so the key
// does not need to discriminate graphs.
type visitKey struct {
	kind    bindKind
	id      oem.NodeID
	valKind uint8
	val     string
	hasAsOf bool
	asOf    timestamp.Time
}

func (b binding) visitKey() visitKey {
	k := visitKey{kind: b.kind}
	switch b.kind {
	case bNode:
		k.id = b.id
		k.hasAsOf = b.hasAsOf
		if b.hasAsOf {
			k.asOf = b.asOf
		}
	case bValue:
		k.valKind = uint8(b.val.Kind())
		k.val = b.val.String()
	}
	return k
}

func appendTimeKey(dst []byte, t timestamp.Time) []byte {
	if !t.IsFinite() {
		if t.Equal(timestamp.PosInf) {
			return append(dst, "+inf"...)
		}
		return append(dst, "-inf"...)
	}
	return strconv.AppendInt(dst, t.Unix(), 10)
}

// graphTag returns a per-graph discriminator for dedup keys so equal node
// ids from different registered graphs cannot collide in one result.
func graphTag(g Graph) uintptr {
	if og, ok := g.(OEMGraph); ok {
		return reflect.ValueOf(og.DB).Pointer()
	}
	v := reflect.ValueOf(g)
	switch v.Kind() {
	case reflect.Pointer, reflect.UnsafePointer, reflect.Map, reflect.Chan, reflect.Func:
		return v.Pointer()
	}
	return 0
}

// env is an immutable chain of variable bindings.
type env struct {
	parent *env
	name   string
	b      binding
}

func (e *env) extend(name string, b binding) *env {
	return &env{parent: e, name: name, b: b}
}

func (e *env) lookup(name string) (binding, bool) {
	for x := e; x != nil; x = x.parent {
		if x.name == name {
			return x.b, true
		}
	}
	return binding{}, false
}

// pathResult is one match of a path expression: the reached binding plus
// the environment extended with any annotation variables bound on the way.
type pathResult struct {
	b   binding
	env *env
}

// evaluation carries the per-query state of one Eval call: an immutable
// snapshot of the engine's graphs and polling times, the caller's context,
// and a cancellation-check counter. Engine state mutated after the
// snapshot (Register, SetPollTimes) does not affect an evaluation in
// flight, which is what makes one Engine safe for concurrent queries.
// Each parallel worker gets its own evaluation (sharing the snapshots) so
// the counter is not contended.
type evaluation struct {
	graphs    map[string]Graph
	pollTimes []timestamp.Time
	ctx       context.Context
	tick      int
	// stream snapshots StreamingEnabled() once per evaluation, so a gate
	// flip mid-query cannot mix the two enumeration disciplines.
	stream bool

	// trace is the per-query trace from the context (nil when untraced;
	// every call on a nil Trace is a no-op). Shared with forked workers —
	// Trace is internally synchronized.
	trace *obs.Trace
	// Per-evaluation stat counters: plain ints, not metrics, so the
	// per-tuple hot path pays no atomics. Each parallel worker owns its
	// forked evaluation's counters; the parent sums them after wg.Wait and
	// flushes once, which keeps collection race-clean under -race.
	bindings  int64
	dedupHits int64

	// constTimes (set by the planned executor, shared read-only across
	// forks) marks <at T> operands with no variable dependencies; atMemo
	// caches their resolved instants per evaluation, never across forks —
	// workers each build their own memo so no synchronization is needed.
	constTimes map[Expr]bool
	atMemo     map[Expr]timeMemo
}

// timeMemo is one memoized constant time-expression resolution.
type timeMemo struct {
	t  timestamp.Time
	ok bool
}

// newEvaluation snapshots the engine state for one query.
func (e *Engine) newEvaluation(ctx context.Context) *evaluation {
	tr := obs.TraceFrom(ctx)
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return &evaluation{graphs: e.graphs, pollTimes: e.pollTimes, ctx: ctx, trace: tr, stream: StreamingEnabled()}
}

// fork clones the evaluation for a parallel worker: shared snapshots and
// trace, own cancellation counter, stat counters and time memo.
func (ev *evaluation) fork() *evaluation {
	return &evaluation{
		graphs:     ev.graphs,
		pollTimes:  ev.pollTimes,
		ctx:        ev.ctx,
		stream:     ev.stream,
		trace:      ev.trace,
		constTimes: ev.constTimes,
	}
}

// finish flushes the evaluation's stats to the package metrics and trace.
func (ev *evaluation) finish(start time.Time, err error) {
	mQueries.Inc()
	if err != nil {
		mQueryErrors.Inc()
	}
	mQueryNs.ObserveSince(start)
	mBindings.Add(ev.bindings)
	mDedupHits.Add(ev.dedupHits)
	ev.trace.Add("bindings", ev.bindings)
	ev.trace.Add("dedup_hits", ev.dedupHits)
}

// cancelCheckInterval is how many checkCancel calls pass between real
// context polls; checks sit on per-tuple and per-frontier hot paths, so the
// interval trades abort latency against overhead.
const cancelCheckInterval = 1024

// checkCancel polls the context every cancelCheckInterval calls.
func (ev *evaluation) checkCancel() error {
	ev.tick++
	if ev.tick%cancelCheckInterval != 0 {
		return nil
	}
	select {
	case <-ev.ctx.Done():
		return ev.ctx.Err()
	default:
		return nil
	}
}

func (ev *evaluation) pollTime(idx int) timestamp.Time {
	// idx is 0 or negative: t[0] = last poll, t[-1] = previous, ...
	i := len(ev.pollTimes) - 1 + idx
	if i < 0 || len(ev.pollTimes) == 0 {
		return timestamp.NegInf
	}
	if i >= len(ev.pollTimes) {
		return timestamp.PosInf
	}
	return ev.pollTimes[i]
}

// Eval evaluates a canonicalized query.
func (e *Engine) Eval(q *Query) (*Result, error) {
	return e.EvalContext(context.Background(), q)
}

// EvalContext evaluates a canonicalized query under a context. When the
// engine's parallelism is above one, the outermost from-clause binding
// stream is partitioned across that many workers; the merged result is
// byte-identical to serial evaluation.
func (e *Engine) EvalContext(ctx context.Context, q *Query) (*Result, error) {
	start := obs.Now()
	ev := e.newEvaluation(ctx)
	sp := ev.trace.StartSpan("eval")
	var res *Result
	var err error
	if pr := e.planFor(ev, q); pr != nil && pr.plan != nil {
		res, err = e.evalPlanned(ev, q, pr)
	} else {
		res, err = e.evalQuery(ev, q)
	}
	rows := 0
	if res != nil {
		rows = len(res.Rows)
	}
	sp.EndNote("rows=%d", rows)
	ev.finish(start, err)
	return res, err
}

func (e *Engine) evalQuery(ev *evaluation, q *Query) (*Result, error) {
	gens := make([]FromItem, 0, len(q.From)+len(q.WhereGens))
	gens = append(gens, q.From...)
	gens = append(gens, q.WhereGens...)
	strict := len(q.From) // generators at index >= strict are existential
	if w := e.Parallelism(); w > 1 {
		res, done, err := ev.evalParallel(q, gens, strict, w)
		if done {
			return res, err
		}
	}
	res := &Result{}
	seen := make(map[string]bool)
	emit := ev.emitter(q, &res.Rows, seen)
	if err := ev.enumerate(gens, 0, strict, nil, emit); err != nil {
		return nil, err
	}
	return res, nil
}

// emitter builds the tuple sink for one evaluation: it applies the where
// clause, builds rows, and appends rows unseen in seen to *rows.
func (ev *evaluation) emitter(q *Query, rows *[]Row, seen map[string]bool) func(*env) error {
	return ev.emitterTo(q, seen, func(row Row) { *rows = append(*rows, row) })
}

// emitterTo is emitter with an arbitrary row sink instead of a slice: the
// streaming parallel merge hands rows to a channel as they are produced
// rather than buffering each shard to completion.
func (ev *evaluation) emitterTo(q *Query, seen map[string]bool, sink func(Row)) func(*env) error {
	var kb []byte // reused key buffer; map lookups on string(kb) do not allocate
	return func(en *env) error {
		ev.bindings++
		if q.Where != nil {
			ok, err := ev.evalBool(en, q.Where)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		built, err := ev.buildRows(en, q.Select)
		if err != nil {
			return err
		}
		for _, row := range built {
			kb = row.appendKey(kb[:0])
			if !seen[string(kb)] {
				seen[string(kb)] = true
				sink(row)
			} else {
				ev.dedupHits++
			}
		}
		return nil
	}
}

// enumerate produces the cross product of generator bindings. Strict
// generators (from clause) eliminate the tuple when empty; existential
// generators (hoisted where paths) bind null instead, so disjunctions over
// missing paths still evaluate.
func (ev *evaluation) enumerate(gens []FromItem, i, strict int, en *env, emit func(*env) error) error {
	if err := ev.checkCancel(); err != nil {
		return err
	}
	if i == len(gens) {
		return emit(en)
	}
	g := gens[i]
	if ev.stream {
		// Streaming: each binding flows into the next generator as the
		// walker produces it; no candidate slice is held, and an errStop
		// from a downstream consumer (a future limit-style sink)
		// propagates up and stops the walk.
		n := 0
		if err := ev.walkPath(en, g.Path, func(r pathResult) error {
			n++
			return ev.enumerate(gens, i+1, strict, r.env.extend(g.Var, r.b), emit)
		}); err != nil {
			return err
		}
		if n > 0 || i < strict {
			return nil // strict with no bindings: no tuples
		}
		// Existential generator with no matches: bind the range variable
		// and any annotation variables its path would have bound (and no
		// earlier generator did) to null, so the rest of the where clause
		// still evaluates.
		return ev.enumerate(gens, i+1, strict, nullBind(en, g), emit)
	}
	results, err := ev.evalPath(en, g.Path)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		if i < strict {
			return nil // strict: no bindings, no tuples
		}
		return ev.enumerate(gens, i+1, strict, nullBind(en, g), emit)
	}
	for _, r := range results {
		if err := ev.enumerate(gens, i+1, strict, r.env.extend(g.Var, r.b), emit); err != nil {
			return err
		}
	}
	return nil
}

// evalPath evaluates a path expression in an environment.
func (ev *evaluation) evalPath(en *env, p *PathExpr) ([]pathResult, error) {
	var frontier []pathResult
	if b, ok := en.lookup(p.Head); ok {
		frontier = []pathResult{{b: b, env: en}}
	} else if g, ok := ev.graphs[p.Head]; ok {
		frontier = []pathResult{{b: nodeBinding(g, g.Root()), env: en}}
	} else {
		return nil, errf(p.P, "unknown name %q (neither a variable in scope nor a registered database)", p.Head)
	}
	for _, step := range p.Steps {
		next := make([]pathResult, 0, len(frontier))
		bindsVars := stepBindsVars(step)

		// Dedup state. Frontiers are overwhelmingly uniform — node
		// bindings sharing one as-of state — so dedup starts on bare
		// NodeIDs and migrates to full visitKeys only if a binding breaks
		// the pattern.
		var (
			ids map[oem.NodeID]bool
			gen map[visitKey]bool
			ref binding // as-of template shared by every entry in ids
		)
		fresh := func(b binding) bool {
			if gen == nil && b.kind == bNode {
				if ids == nil {
					ids = make(map[oem.NodeID]bool, 2*len(frontier))
					ref = b
				}
				if b.hasAsOf == ref.hasAsOf && (!b.hasAsOf || b.asOf == ref.asOf) {
					if ids[b.id] {
						return false
					}
					ids[b.id] = true
					return true
				}
			}
			if gen == nil {
				gen = make(map[visitKey]bool, len(ids)+16)
				for id := range ids {
					rb := ref
					rb.id = id
					gen[rb.visitKey()] = true
				}
			}
			k := b.visitKey()
			if gen[k] {
				return false
			}
			gen[k] = true
			return true
		}

		for _, cur := range frontier {
			if err := ev.checkCancel(); err != nil {
				return nil, err
			}
			start := len(next)
			var err error
			next, err = ev.expandStep(next, cur, step)
			if err != nil {
				return nil, err
			}
			if !bindsVars {
				// Environments are unchanged, so identical targets from
				// different parents are redundant.
				kept := next[:start]
				for _, r := range next[start:] {
					if !fresh(r.b) {
						continue
					}
					kept = append(kept, r)
				}
				next = kept
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil, nil
		}
	}
	return frontier, nil
}

// pathAnnotVars collects the annotation variables a path binds.
func pathAnnotVars(p *PathExpr) []string {
	var vars []string
	for _, s := range p.Steps {
		for _, ann := range []*AnnotExpr{s.Arc, s.Node} {
			if ann == nil {
				continue
			}
			for _, v := range []string{ann.AtVar, ann.FromVar, ann.ToVar} {
				if v != "" {
					vars = append(vars, v)
				}
			}
		}
	}
	return vars
}

func stepBindsVars(s *PathStep) bool {
	for _, ann := range []*AnnotExpr{s.Arc, s.Node} {
		if ann != nil && (ann.AtVar != "" || ann.FromVar != "" || ann.ToVar != "") {
			return true
		}
	}
	return false
}

// expandStep applies one path step to one binding, appending the reached
// bindings to dst. The append style lets one evalPath step accumulate its
// whole frontier in a single slice instead of allocating a short-lived
// slice per expanded binding.
func (ev *evaluation) expandStep(dst []pathResult, cur pathResult, step *PathStep) ([]pathResult, error) {
	if cur.b.kind != bNode {
		return dst, nil // cannot traverse from a value or null
	}
	g := cur.b.g

	// Regular path group: (a.b|c) with an optional quantifier.
	if step.Group != nil {
		return ev.expandGroup(dst, cur, step.Group), nil
	}

	// '#' wildcard: all nodes reachable in zero or more steps.
	if step.Hash {
		out := dst
		seen := map[oem.NodeID]bool{cur.b.id: true}
		stack := []oem.NodeID{cur.b.id}
		for len(stack) > 0 {
			if err := ev.checkCancel(); err != nil {
				return dst, err
			}
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nb := cur.b
			nb.id = n
			out = append(out, pathResult{b: nb, env: cur.env})
			for _, a := range ev.liveArcs(cur.b, g, n) {
				if !seen[a.Child] {
					seen[a.Child] = true
					stack = append(stack, a.Child)
				}
			}
		}
		return out, nil
	}

	// Select candidate (arc, envExtension) pairs according to the arc
	// annotation expression.
	out := dst
	appendChild := func(child oem.NodeID, en *env, asOf *timestamp.Time) error {
		nb := cur.b
		nb.id = child
		if asOf != nil {
			nb.hasAsOf = true
			nb.asOf = *asOf
		}
		var err error
		out, err = ev.applyNodeAnnot(out, pathResult{b: nb, env: en}, step.Node)
		return err
	}

	switch {
	case step.Arc == nil:
		// Exact-label steps over the current snapshot resolve from the
		// adjacency index when the graph provides one; the arcs come back
		// in the same insertion order the scan below would produce.
		if ls, ok := g.(LabelSeeker); ok && exactLabel(step) && !cur.b.hasAsOf {
			for _, a := range ls.OutLabeled(cur.b.id, step.Label) {
				if err := appendChild(a.Child, cur.env, nil); err != nil {
					return nil, err
				}
			}
			break
		}
		for _, a := range ev.liveArcs(cur.b, g, cur.b.id) {
			if !labelMatch(step, a.Label) {
				continue
			}
			if err := appendChild(a.Child, cur.env, nil); err != nil {
				return nil, err
			}
		}
	case step.Arc.Op == OpAdd || step.Arc.Op == OpRem:
		wantKind := annotKindFor(step.Arc.Op)
		// Exact-label annotation steps read the (parent, label) slice of
		// the full arc relation instead of scanning every arc ever; the
		// index preserves insertion order within the label.
		arcs := g.OutAll(cur.b.id)
		if as, ok := g.(AllLabelSeeker); ok && exactLabel(step) {
			arcs = as.OutAllLabeled(cur.b.id, step.Label)
		}
		for _, a := range arcs {
			if !labelMatch(step, a.Label) {
				continue
			}
			for _, ann := range g.ArcAnnots(a) {
				if ann.Kind != wantKind {
					continue
				}
				en := cur.env
				if step.Arc.AtVar != "" {
					en = en.extend(step.Arc.AtVar, valueBinding(value.Time(ann.At)))
				}
				if err := appendChild(a.Child, en, nil); err != nil {
					return nil, err
				}
			}
		}
	case step.Arc.Op == OpAt:
		t, ok, err := ev.evalTime(cur.env, step.Arc.AtExpr)
		if err != nil {
			return nil, err
		}
		if !ok {
			return dst, nil
		}
		// A materialized time-t view skips the per-arc annotation scans;
		// it is OutAll filtered by liveness, so filtering it by label
		// visits the same arcs in the same order as the fallback.
		if ts, ok := g.(TimeSeeker); ok {
			for _, a := range ts.OutAt(cur.b.id, t) {
				if !labelMatch(step, a.Label) {
					continue
				}
				if err := appendChild(a.Child, cur.env, &t); err != nil {
					return nil, err
				}
			}
			break
		}
		for _, a := range g.OutAll(cur.b.id) {
			if !labelMatch(step, a.Label) {
				continue
			}
			if g.ArcLiveAt(a, t) {
				if err := appendChild(a.Child, cur.env, &t); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, errf(step.P, "%s annotation cannot precede an arc label", step.Arc.Op)
	}
	return out, nil
}

// expandGroup applies a regular path group to one binding: each
// application follows one of the alternative label sequences; the
// quantifier controls repetition. Group labels support '%' globs like
// ordinary steps. Bindings inherit the time-travel instant; environments
// are unchanged (groups bind no variables).
func (ev *evaluation) expandGroup(dst []pathResult, cur pathResult, grp *PathGroup) []pathResult {
	g := cur.b.g

	ls, hasLS := g.(LabelSeeker)

	// followSeq walks one fixed label sequence from a node set.
	followSeq := func(start map[oem.NodeID]bool, seq []string) map[oem.NodeID]bool {
		frontier := start
		for _, label := range seq {
			next := make(map[oem.NodeID]bool)
			glob := strings.Contains(label, "%")
			if hasLS && !glob && !cur.b.hasAsOf {
				// Exact labels over the current snapshot come straight
				// from the adjacency index; the frontier is a set, so
				// arc order is immaterial here.
				for n := range frontier {
					for _, a := range ls.OutLabeled(n, label) {
						next[a.Child] = true
					}
				}
				frontier = next
				if len(frontier) == 0 {
					break
				}
				continue
			}
			for n := range frontier {
				for _, a := range ev.liveArcs(cur.b, g, n) {
					if glob {
						if !value.Str(a.Label).Like(label) {
							continue
						}
					} else if a.Label != label {
						continue
					}
					next[a.Child] = true
				}
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
		}
		return frontier
	}

	// applyOnce maps a node set through any one alternative.
	applyOnce := func(start map[oem.NodeID]bool) map[oem.NodeID]bool {
		out := make(map[oem.NodeID]bool)
		for _, alt := range grp.Alts {
			for n := range followSeq(start, alt) {
				out[n] = true
			}
		}
		return out
	}

	start := map[oem.NodeID]bool{cur.b.id: true}
	var reached map[oem.NodeID]bool
	switch grp.Quant {
	case 0:
		reached = applyOnce(start)
	case '?':
		reached = applyOnce(start)
		reached[cur.b.id] = true
	case '*', '+':
		seen := make(map[oem.NodeID]bool)
		frontier := start
		if grp.Quant == '*' {
			seen[cur.b.id] = true
		}
		for len(frontier) > 0 {
			next := applyOnce(frontier)
			frontier = make(map[oem.NodeID]bool)
			for n := range next {
				if !seen[n] {
					seen[n] = true
					frontier[n] = true
				}
			}
		}
		reached = seen
	}

	ids := make([]oem.NodeID, 0, len(reached))
	for n := range reached {
		ids = append(ids, n)
	}
	sortNodeIDs(ids)
	out := dst
	for _, n := range ids {
		nb := cur.b
		nb.id = n
		out = append(out, pathResult{b: nb, env: cur.env})
	}
	return out
}

func sortNodeIDs(ids []oem.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// liveArcs returns the arcs of n visible to an unannotated step: the
// current snapshot, or the snapshot as of the binding's time-travel instant.
func (ev *evaluation) liveArcs(b binding, g Graph, n oem.NodeID) []oem.Arc {
	if !b.hasAsOf {
		return g.Out(n)
	}
	if ts, ok := g.(TimeSeeker); ok {
		return ts.OutAt(n, b.asOf)
	}
	var arcs []oem.Arc
	for _, a := range g.OutAll(n) {
		if g.ArcLiveAt(a, b.asOf) {
			arcs = append(arcs, a)
		}
	}
	return arcs
}

// applyNodeAnnot filters/expands one reached node through a node annotation
// expression, appending the surviving bindings to dst.
func (ev *evaluation) applyNodeAnnot(dst []pathResult, r pathResult, ann *AnnotExpr) ([]pathResult, error) {
	if ann == nil {
		return append(dst, r), nil
	}
	g := r.b.g
	switch ann.Op {
	case OpCre:
		ct, ok := g.CreTime(r.b.id)
		if !ok {
			return dst, nil
		}
		en := r.env
		if ann.AtVar != "" {
			en = en.extend(ann.AtVar, valueBinding(value.Time(ct)))
		}
		return append(dst, pathResult{b: r.b, env: en}), nil
	case OpUpd:
		for _, u := range g.UpdTriples(r.b.id) {
			en := r.env
			if ann.AtVar != "" {
				en = en.extend(ann.AtVar, valueBinding(value.Time(u.At)))
			}
			if ann.FromVar != "" {
				en = en.extend(ann.FromVar, valueBinding(u.Old))
			}
			if ann.ToVar != "" {
				en = en.extend(ann.ToVar, valueBinding(u.New))
			}
			dst = append(dst, pathResult{b: r.b, env: en})
		}
		return dst, nil
	case OpAt:
		t, ok, err := ev.evalTime(r.env, ann.AtExpr)
		if err != nil || !ok {
			return dst, err
		}
		nb := r.b
		nb.hasAsOf = true
		nb.asOf = t
		return append(dst, pathResult{b: nb, env: r.env}), nil
	default:
		return dst, errf(ann.P, "%s annotation cannot follow a label", ann.Op)
	}
}

// labelMatch matches an arc label against a step: exact for quoted labels,
// with '%' globbing otherwise.
func labelMatch(step *PathStep, label string) bool {
	if exactLabel(step) {
		return step.Label == label
	}
	return value.Str(label).Like(step.Label)
}

// exactLabel reports whether the step's label matches by string equality
// only (no '%' globbing), making it servable from a label index.
func exactLabel(step *PathStep) bool {
	return step.Quoted || !strings.Contains(step.Label, "%")
}

func annotKindFor(op AnnotOp) doem.AnnotKind {
	if op == OpAdd {
		return doem.AnnotAdd
	}
	return doem.AnnotRem
}

// evalTime evaluates an expression to a timestamp (coercing strings and
// time values). Time operands the planner proved environment-independent
// resolve once per evaluation instead of once per binding (constant
// <at T> hoisting).
func (ev *evaluation) evalTime(en *env, ex Expr) (timestamp.Time, bool, error) {
	if ev.constTimes != nil && ev.constTimes[ex] {
		if m, ok := ev.atMemo[ex]; ok {
			return m.t, m.ok, nil
		}
		t, ok, err := ev.evalTimeUncached(en, ex)
		if err != nil {
			return t, ok, err
		}
		if ev.atMemo == nil {
			ev.atMemo = make(map[Expr]timeMemo)
		}
		ev.atMemo[ex] = timeMemo{t: t, ok: ok}
		return t, ok, nil
	}
	return ev.evalTimeUncached(en, ex)
}

func (ev *evaluation) evalTimeUncached(en *env, ex Expr) (timestamp.Time, bool, error) {
	bs, err := ev.evalOperand(en, ex)
	if err != nil {
		return timestamp.Time{}, false, err
	}
	for _, b := range bs {
		v, ok := b.valueOf()
		if !ok {
			continue
		}
		switch v.Kind() {
		case value.KindTime:
			return v.AsTime(), true, nil
		case value.KindString:
			if t, err := timestamp.Parse(v.AsString()); err == nil {
				return t, true, nil
			}
		case value.KindInt:
			return timestamp.FromUnix(v.AsInt()), true, nil
		}
	}
	return timestamp.Time{}, false, nil
}

// evalOperand evaluates an expression to its set of bindings.
func (ev *evaluation) evalOperand(en *env, ex Expr) ([]binding, error) {
	switch x := ex.(type) {
	case *ConstExpr:
		return []binding{valueBinding(x.Val)}, nil
	case *TimeRefExpr:
		return []binding{valueBinding(value.Time(ev.pollTime(x.Index)))}, nil
	case *PathValueExpr:
		rs, err := ev.evalPath(en, x.Path)
		if err != nil {
			return nil, err
		}
		bs := make([]binding, 0, len(rs))
		for _, r := range rs {
			bs = append(bs, r.b)
		}
		return bs, nil
	case *BinExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			ls, err := ev.evalOperand(en, x.L)
			if err != nil {
				return nil, err
			}
			rs, err := ev.evalOperand(en, x.R)
			if err != nil {
				return nil, err
			}
			var out []binding
			for _, l := range ls {
				lv, lok := l.valueOf()
				if !lok {
					continue
				}
				for _, r := range rs {
					rv, rok := r.valueOf()
					if !rok {
						continue
					}
					if v, ok := value.Arith(x.Op, lv, rv); ok {
						out = append(out, valueBinding(v))
					}
				}
			}
			return out, nil
		default:
			// A boolean expression in operand position.
			ok, err := ev.evalBool(en, x)
			if err != nil {
				return nil, err
			}
			return []binding{valueBinding(value.Bool(ok))}, nil
		}
	case *NotExpr, *ExistsExpr:
		ok, err := ev.evalBool(en, ex)
		if err != nil {
			return nil, err
		}
		return []binding{valueBinding(value.Bool(ok))}, nil
	case *AggExpr:
		v, err := ev.evalAggregate(en, x)
		if err != nil {
			return nil, err
		}
		return []binding{valueBinding(v)}, nil
	}
	return nil, errf(ex.Pos(), "cannot evaluate expression %s", ex)
}

// evalAggregate folds an aggregate function over a path's matches in the
// current tuple environment. count tallies matches; min/max/sum/avg fold
// the coercible numeric (or, for min/max, comparable) values and yield null
// on an empty fold.
func (ev *evaluation) evalAggregate(en *env, agg *AggExpr) (value.Value, error) {
	// The fold consumes the walker's stream directly (when streaming is
	// on) instead of materializing the match slice first; a count over a
	// large path holds no intermediate state but the counter.
	var acc value.Value
	var cnt int64
	n := 0
	fold := func(r pathResult) error {
		cnt++
		if agg.Fn == "count" {
			return nil
		}
		v, ok := r.b.valueOf()
		if !ok || v.IsComplex() || v.Kind() == value.KindNull {
			return nil
		}
		if n == 0 {
			acc = v
			n++
			return nil
		}
		switch agg.Fn {
		case "min":
			if cmp, ok := value.Compare(v, acc); ok && cmp < 0 {
				acc = v
			}
		case "max":
			if cmp, ok := value.Compare(v, acc); ok && cmp > 0 {
				acc = v
			}
		case "sum", "avg":
			if s, ok := value.Arith("+", acc, v); ok {
				acc = s
			} else {
				return nil
			}
		}
		n++
		return nil
	}
	if ev.stream {
		if err := ev.walkPath(en, agg.Path, fold); err != nil {
			return value.Value{}, err
		}
	} else {
		rs, err := ev.evalPath(en, agg.Path)
		if err != nil {
			return value.Value{}, err
		}
		for _, r := range rs {
			_ = fold(r)
		}
	}
	if agg.Fn == "count" {
		return value.Int(cnt), nil
	}
	if n == 0 {
		return value.Null(), nil
	}
	if agg.Fn == "avg" {
		if a, ok := value.Arith("/", acc, value.Int(int64(n))); ok {
			return a, nil
		}
		return value.Null(), nil
	}
	return acc, nil
}

// evalBool evaluates an expression as a predicate. Comparisons over path
// sets are existential; coercion failures and null bindings yield false
// (the Lorel "forgiving" semantics of Example 4.1).
func (ev *evaluation) evalBool(en *env, ex Expr) (bool, error) {
	switch x := ex.(type) {
	case *BinExpr:
		switch x.Op {
		case "and":
			l, err := ev.evalBool(en, x.L)
			if err != nil || !l {
				return false, err
			}
			return ev.evalBool(en, x.R)
		case "or":
			l, err := ev.evalBool(en, x.L)
			if err != nil || l {
				return l, err
			}
			return ev.evalBool(en, x.R)
		case "=", "!=", "<", "<=", ">", ">=":
			return ev.evalCompare(en, x)
		case "like":
			ls, err := ev.evalOperand(en, x.L)
			if err != nil {
				return false, err
			}
			rs, err := ev.evalOperand(en, x.R)
			if err != nil {
				return false, err
			}
			for _, l := range ls {
				lv, lok := l.valueOf()
				if !lok {
					continue
				}
				for _, r := range rs {
					rv, rok := r.valueOf()
					if !rok || rv.Kind() != value.KindString {
						continue
					}
					if lv.Like(rv.AsString()) {
						return true, nil
					}
				}
			}
			return false, nil
		default:
			return false, errf(x.P, "operator %q is not a predicate", x.Op)
		}
	case *NotExpr:
		ok, err := ev.evalBool(en, x.E)
		return !ok, err
	case *ExistsExpr:
		// Stream candidates and stop at the first witness. Materializing
		// the whole x.In result set before testing a single candidate made
		// exists pay for every match even when the first one satisfied;
		// this walk does work proportional to the first witness's position.
		// The walker is used here regardless of the REPRO_NOSTREAM gate:
		// the short-circuit is a bugfix, not an optimization mode.
		found := false
		err := ev.walkPath(en, x.In, func(r pathResult) error {
			ev.bindings++ // one candidate examined
			ok, err := ev.evalBool(r.env.extend(x.Var, r.b), x.Cond)
			if err != nil {
				return err
			}
			if ok {
				found = true
				return errStop
			}
			return nil
		})
		if err != nil && err != errStop {
			return false, err
		}
		return found, nil
	case *ConstExpr:
		return x.Val.Truthy(), nil
	case *PathValueExpr:
		bs, err := ev.evalOperand(en, ex)
		if err != nil {
			return false, err
		}
		for _, b := range bs {
			if v, ok := b.valueOf(); ok && v.Truthy() {
				return true, nil
			}
		}
		return false, nil
	case *TimeRefExpr:
		return true, nil
	}
	return false, errf(ex.Pos(), "cannot evaluate %s as a predicate", ex)
}

func (ev *evaluation) evalCompare(en *env, x *BinExpr) (bool, error) {
	ls, err := ev.evalOperand(en, x.L)
	if err != nil {
		return false, err
	}
	rs, err := ev.evalOperand(en, x.R)
	if err != nil {
		return false, err
	}
	for _, l := range ls {
		lv, lok := l.valueOf()
		if !lok {
			continue
		}
		for _, r := range rs {
			rv, rok := r.valueOf()
			if !rok {
				continue
			}
			cmp, ok := value.Compare(lv, rv)
			if !ok {
				continue
			}
			match := false
			switch x.Op {
			case "=":
				match = cmp == 0
			case "!=":
				match = cmp != 0
			case "<":
				match = cmp < 0
			case "<=":
				match = cmp <= 0
			case ">":
				match = cmp > 0
			case ">=":
				match = cmp >= 0
			}
			if match {
				return true, nil
			}
		}
	}
	return false, nil
}

// buildRows constructs result rows for one satisfied tuple. Select items
// normally evaluate to single bindings; items that still denote sets fan
// out into one row per combination.
func (ev *evaluation) buildRows(en *env, items []SelectItem) ([]Row, error) {
	cells := make([][]binding, len(items))
	single := true
	for i, item := range items {
		bs, err := ev.evalOperand(en, item.Expr)
		if err != nil {
			return nil, err
		}
		if len(bs) == 0 {
			bs = []binding{{kind: bNull}}
		}
		if len(bs) != 1 {
			single = false
		}
		cells[i] = bs
	}
	// Fast path: every item resolved to one binding — exactly one row, no
	// cross-product recursion.
	if single {
		allNull := true
		row := Row{Cells: make([]Cell, len(items))}
		for i, bs := range cells {
			row.Cells[i] = Cell{Label: items[i].Label, b: bs[0]}
			if bs[0].kind != bNull {
				allNull = false
			}
		}
		if allNull {
			return nil, nil
		}
		return []Row{row}, nil
	}
	var rows []Row
	var build func(i int, acc []Cell)
	build = func(i int, acc []Cell) {
		if i == len(items) {
			rows = append(rows, Row{Cells: append([]Cell(nil), acc...)})
			return
		}
		for _, b := range cells[i] {
			build(i+1, append(acc, Cell{Label: items[i].Label, b: b}))
		}
	}
	build(0, nil)
	// Drop rows that are entirely null.
	var kept []Row
	for _, r := range rows {
		allNull := true
		for _, c := range r.Cells {
			if c.b.kind != bNull {
				allNull = false
				break
			}
		}
		if !allNull {
			kept = append(kept, r)
		}
	}
	return kept, nil
}
