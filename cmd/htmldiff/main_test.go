package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunProducesMarkup(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.html")
	newPath := filepath.Join(dir, "new.html")
	if err := os.WriteFile(oldPath, []byte(`<ul><li>Janta price 10</li></ul>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(`<ul><li>Janta price 20</li><li>Hakata</li></ul>`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture stdout.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := run(oldPath, newPath, false)
	w.Close()
	os.Stdout = orig
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	out := make([]byte, 64*1024)
	n, _ := r.Read(out)
	got := string(out[:n])
	for _, want := range []string{"hd-legend", "hd-ins", "Hakata"} {
		if !contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent/a.html", "/nonexistent/b.html", false); err == nil {
		t.Error("missing input accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
