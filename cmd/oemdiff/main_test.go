package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/guidegen"
	"repro/internal/oem"
	"repro/internal/oemio"
	"repro/internal/value"
)

func writeDB(t *testing.T, dir, name string, db *oem.Database) string {
	t.Helper()
	data, err := oemio.Marshal(db)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunIdentityDiff(t *testing.T) {
	dir := t.TempDir()
	old, ids := guidegen.PaperGuide()
	new := old.Clone()
	if err := new.UpdateNode(ids.Price, value.Int(20)); err != nil {
		t.Fatal(err)
	}
	oldPath := writeDB(t, dir, "old.json", old)
	newPath := writeDB(t, dir, "new.json", new)
	if err := run(oldPath, newPath, false); err != nil {
		t.Fatalf("identity diff: %v", err)
	}
	if err := run(oldPath, newPath, true); err != nil {
		t.Fatalf("matching diff: %v", err)
	}
}

func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, bad, false); err == nil {
		t.Error("garbage input accepted")
	}
	if err := run("/nonexistent", "/nonexistent", false); err == nil {
		t.Error("missing file accepted")
	}
}
