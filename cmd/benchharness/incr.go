package main

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/change"
	"repro/internal/doem"
	"repro/internal/guidegen"
	"repro/internal/obs"
	"repro/internal/timestamp"
	"repro/internal/trigger"
	"repro/internal/value"
)

// newIncrFleet builds a standing-query fleet for B15: a trigger manager
// over the paper guide with n queries — one hot one the workload touches
// on every change set (a price update), and n-1 cold ones watching
// labels the workload never produces. With incremental matching off,
// every applied change set evaluates all n queries (the poll-diff
// discipline: cost per tick is O(total subscriptions)); with it on, the
// fingerprint index narrows each change set to the single affected query
// (cost O(touched)). The returned step function applies one change set.
func newIncrFleet(n int, incremental bool) (*trigger.Manager, func()) {
	db, ids := guidegen.PaperGuide()
	m := trigger.NewManager("guide", doem.New(db))
	m.SetIncremental(incremental)
	noop := func(trigger.Firing) error { return nil }
	if err := m.Add(trigger.Trigger{
		Name:   "hot-price",
		Query:  `select NV from guide.restaurant R, R.price<upd at T to NV> where T > t[-1]`,
		Action: noop,
	}); err != nil {
		panic(err)
	}
	for i := 1; i < n; i++ {
		if err := m.Add(trigger.Trigger{
			Name:   fmt.Sprintf("cold-%06d", i),
			Query:  fmt.Sprintf(`select guide.<add at T>audit_%d where T > t[-1]`, i),
			Action: noop,
		}); err != nil {
			panic(err)
		}
	}
	t := timestamp.MustParse("1Jan97")
	v := int64(0)
	step := func() {
		t = t.Add(1e9)
		v++
		if err := m.Apply(t, change.Set{
			change.UpdNode{Node: ids.Price, Value: value.Int(10 + v%50)},
		}); err != nil {
			panic(err)
		}
	}
	return m, step
}

func b15() {
	fmt.Println("\n-- B15: incremental subscription matching — per-change cost vs standing-query count --")
	tiers := []int{scale(1000), scale(10000), scale(100000)}
	full := make([]time.Duration, len(tiers))
	incr := make([]time.Duration, len(tiers))
	fmt.Printf("  %8s %14s %14s %10s\n", "queries", "full/op", "incr/op", "speedup")
	for i, n := range tiers {
		_, stepFull := newIncrFleet(n, false)
		full[i] = measure(stepFull)
		_, stepIncr := newIncrFleet(n, true)
		incr[i] = measure(stepIncr)
		fmt.Printf("  %8d %14s %14s %9.1fx\n", n, full[i], incr[i], float64(full[i])/float64(incr[i]))
	}
	// The issue's acceptance bars: >= 10x over poll-diff at the 10k tier,
	// and near-flat per-change cost as the untouched-query count grows
	// 10x (10k -> 100k) while full evaluation grows with the fleet.
	check("B15a", "incremental >= 10x over full evaluation at 10k standing queries",
		float64(full[1])/float64(incr[1]) >= 10)
	check("B15b", "per-change cost near-flat over 10x untouched-query growth",
		float64(incr[2]) < 3*float64(incr[1]))
}

// runIncrJSON is B15 in JSON form: per-change-set matching cost with the
// fleet fully evaluated vs incrementally matched. The gated headlines are
// the 10k-tier speedup (full over incremental, acceptance bar >= 10) and
// the incremental flatness factor over the 10x fleet growth.
func runIncrJSON(report *benchReport, bench func(string, func(*testing.B)) testing.BenchmarkResult) error {
	obs.SetEnabled(false)
	nsOp := func(r testing.BenchmarkResult) float64 { return float64(r.T.Nanoseconds()) / float64(r.N) }

	run := func(name string, n int, incremental bool) float64 {
		_, step := newIncrFleet(n, incremental)
		return nsOp(bench(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				step()
			}
		}))
	}
	full10k := run("incr-match-10k-full", 10000, false)
	incr1k := run("incr-match-1k-incr", 1000, true)
	incr10k := run("incr-match-10k-incr", 10000, true)
	incr100k := run("incr-match-100k-incr", 100000, true)
	run("incr-match-1k-full", 1000, false)
	_ = incr1k

	report.IncrNotifySpeedup10k = full10k / incr10k
	report.IncrNotifyFlatness10x = incr100k / incr10k

	// One instrumented fleet so the incr_* and trigger_* counters land in
	// the report's obs snapshot alongside the rest of the stack.
	obs.SetEnabled(true)
	_, step := newIncrFleet(100, true)
	for i := 0; i < 50; i++ {
		step()
	}
	return nil
}
