package core

import (
	"testing"

	"repro/internal/change"
	"repro/internal/guidegen"
	"repro/internal/lore"
	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

func TestOpenApplyQuery(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	c := Open("guide", db)
	if err := c.Apply(guidegen.T1, change.Set{
		change.UpdNode{Node: ids.Price, Value: value.Int(20)},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`select OV, NV from guide.restaurant.price<upd from OV to NV>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	if v := res.Values("old-value"); len(v) != 1 || !v[0].Equal(value.Int(10)) {
		t.Errorf("old-value = %v", v)
	}
}

func TestFromHistoryAndBothStrategies(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	c, err := FromHistory("guide", db, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatal(err)
	}
	const q = `select guide.<add>restaurant`
	direct, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	trans, err := c.QueryTranslated(q)
	if err != nil {
		t.Fatal(err)
	}
	dn := direct.FirstColumnNodes()
	tn := c.MapToDOEM(trans.FirstColumnNodes())
	if len(dn) != 1 || len(tn) != 1 || dn[0] != tn[0] {
		t.Errorf("strategies disagree: %v vs %v", dn, tn)
	}
}

func TestApplySnapshot(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	c := Open("guide", db)
	next := db.Clone()
	if err := next.UpdateNode(ids.Price, value.Int(25)); err != nil {
		t.Fatal(err)
	}
	ops, err := c.ApplySnapshot(guidegen.T1, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("inferred ops = %s", ops)
	}
	if v := c.Current().MustValue(ids.Price); !v.Equal(value.Int(25)) {
		t.Errorf("price = %s", v)
	}
	// No-op snapshot produces no history step.
	before := len(c.DOEM().Steps())
	ops, err = c.ApplySnapshot(guidegen.T2, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 0 || len(c.DOEM().Steps()) != before {
		t.Error("no-op snapshot recorded a step")
	}
}

func TestSnapshotAtAndHistory(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	c, err := FromHistory("guide", db, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatal(err)
	}
	s := c.SnapshotAt(timestamp.MustParse("31Dec96"))
	if !s.Equal(db) {
		t.Error("pre-history snapshot differs from original")
	}
	h := c.History()
	if len(h) != 3 {
		t.Errorf("history steps = %d", len(h))
	}
}

func TestSaveLoad(t *testing.T) {
	store, err := lore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db, ids := guidegen.PaperGuide()
	c, err := FromHistory("guide", db, guidegen.PaperHistory(ids))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(store); err != nil {
		t.Fatal(err)
	}
	back, err := Load(store, "guide")
	if err != nil {
		t.Fatal(err)
	}
	if !back.DOEM().Equal(c.DOEM()) {
		t.Error("reloaded database differs")
	}
	// And it still answers queries.
	res, err := back.Query(`select guide.<add>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
	if _, err := Load(store, "missing"); err == nil {
		t.Error("loading missing database succeeded")
	}
}

func TestInvalidationAfterApply(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	c := Open("guide", db)
	// Force the encoding to exist.
	if _, err := c.QueryTranslated(`select guide.restaurant`); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(guidegen.T1, change.Set{
		change.CreNode{Node: oem.NodeID(900), Value: value.Str("Hakata")},
		change.AddArc{Parent: ids.Guide, Label: "restaurant", Child: 900},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryTranslated(`select guide.<add>restaurant`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("stale encoding after Apply: rows = %d, want 1", res.Len())
	}
}

func TestUpdateStatement(t *testing.T) {
	db, ids := guidegen.PaperGuide()
	c := Open("guide", db)
	set, err := c.Update(timestamp.MustParse("1Jan97"),
		`update guide.restaurant.price := 25 where guide.restaurant.name = "Janta"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("set = %s", set)
	}
	if v := c.Current().MustValue(ids.JantaPrice); !v.Equal(value.Str("moderate")) {
		// Janta's price was the string "moderate"; the update replaced it.
		if !v.Equal(value.Int(25)) {
			t.Errorf("price = %s", v)
		}
	}
	// The change is queryable as history.
	res, err := c.Query(`select OV, NV from guide.restaurant.price<upd from OV to NV>`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("upd rows = %d", res.Len())
	}
	// Insert through the same API allocates fresh ids safely.
	set, err = c.Update(timestamp.MustParse("2Jan97"),
		`insert guide.restaurant.comment := "new" where guide.restaurant.name = "Janta"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Errorf("insert set = %s", set)
	}
	// A no-match update records no step.
	before := len(c.DOEM().Steps())
	set, err = c.Update(timestamp.MustParse("3Jan97"),
		`update guide.restaurant.price := 1 where guide.restaurant.name = "Nobody"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 || len(c.DOEM().Steps()) != before {
		t.Error("no-match update recorded a step")
	}
}
