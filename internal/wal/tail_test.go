package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func tailPayload(seq uint64) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("payload-%06d|", seq)), 4)
}

func TestRecordsBasic(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{SegmentSize: 256, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 100
	for i := uint64(1); i <= n; i++ {
		if _, err := l.Append(tailPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Walk the log in small batches from seq 0 (treated as 1).
	var got []Rec
	next := uint64(0)
	for {
		recs, last, err := l.Records(next, 64)
		if err != nil {
			t.Fatal(err)
		}
		if last != n {
			t.Fatalf("last = %d, want %d", last, n)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
		next = recs[len(recs)-1].Seq + 1
	}
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, r := range got {
		want := uint64(i + 1)
		if r.Seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, want)
		}
		if !bytes.Equal(r.Payload, tailPayload(want)) {
			t.Fatalf("record %d payload mismatch", want)
		}
	}
	// Mid-log start.
	recs, _, err := l.Records(42, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n-41 || recs[0].Seq != 42 {
		t.Fatalf("Records(42) = %d records starting %d", len(recs), recs[0].Seq)
	}
	// Beyond the end.
	recs, last, err := l.Records(n+1, 1<<20)
	if err != nil || len(recs) != 0 || last != n {
		t.Fatalf("Records past end = %v,%d,%v", recs, last, err)
	}
}

func TestRecordsCompacted(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 50; i++ {
		if _, err := l.Append(tailPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("snap"), 30); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Records(30, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Records(30) err = %v, want ErrCompacted", err)
	}
	recs, _, err := l.Records(31, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 || recs[0].Seq != 31 || recs[19].Seq != 50 {
		t.Fatalf("Records(31) = %d records [%d..%d]", len(recs), recs[0].Seq, recs[len(recs)-1].Seq)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if _, err := l.Append(tailPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset([]byte("bootstrap"), 42); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 42 {
		t.Fatalf("LastSeq after Reset = %d, want 42", got)
	}
	pay, upTo, ok := l.LastCheckpoint()
	if !ok || upTo != 42 || string(pay) != "bootstrap" {
		t.Fatalf("LastCheckpoint = %q,%d,%v", pay, upTo, ok)
	}
	if recs, _, err := l.Records(1, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Records(1) after Reset = %v,%v, want ErrCompacted", recs, err)
	}
	seq, err := l.Append(tailPayload(43))
	if err != nil || seq != 43 {
		t.Fatalf("Append after Reset = %d,%v, want 43", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery must agree with the reset state.
	l2, err := Open(dir, &Options{SegmentSize: 128, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 43 {
		t.Fatalf("LastSeq after reopen = %d, want 43", got)
	}
	recs, _, err := l2.Records(43, 1<<20)
	if err != nil || len(recs) != 1 || !bytes.Equal(recs[0].Payload, tailPayload(43)) {
		t.Fatalf("Records(43) after reopen = %v,%v", recs, err)
	}
}

// TestRecordsConcurrentAppend is the race-stress half of the Replay/Append
// audit: a writer appends while tail-followers read with Records and a
// recovery-style Replay runs at the end. Run under -race.
func TestRecordsConcurrentAppend(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{SegmentSize: 512, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const total = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= total; i++ {
			if _, err := l.Append(tailPayload(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	// Two concurrent tail-followers.
	readers := 2
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			next := uint64(1)
			for next <= total {
				recs, _, err := l.Records(next, 2048)
				if err != nil {
					t.Errorf("records from %d: %v", next, err)
					return
				}
				for _, rec := range recs {
					if rec.Seq != next {
						t.Errorf("got seq %d, want %d", rec.Seq, next)
						return
					}
					if !bytes.Equal(rec.Payload, tailPayload(rec.Seq)) {
						t.Errorf("payload mismatch at %d", rec.Seq)
						return
					}
					next++
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// A full Replay still sees the exact sequence.
	want := uint64(1)
	err = l.Replay(func(seq uint64, payload []byte) error {
		if seq != want {
			return fmt.Errorf("replay seq %d, want %d", seq, want)
		}
		want++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want != total+1 {
		t.Fatalf("replay covered %d records, want %d", want-1, total)
	}
}

// TestRecordsConcurrentCheckpoint exercises the ErrCompacted retry path:
// checkpoints race the tail-follower, which must either read a record or
// learn it was compacted — never see garbage.
func TestRecordsConcurrentCheckpoint(t *testing.T) {
	l, err := Open(t.TempDir(), &Options{SegmentSize: 256, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const total = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= total; i++ {
			if _, err := l.Append(tailPayload(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			if i%100 == 0 {
				if err := l.Checkpoint([]byte("ck"), i-50); err != nil {
					t.Errorf("checkpoint at %d: %v", i-50, err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		next := uint64(1)
		for next <= total {
			recs, _, err := l.Records(next, 1024)
			if errors.Is(err, ErrCompacted) {
				_, upTo, ok := l.LastCheckpoint()
				if !ok || upTo < next {
					t.Errorf("compacted below %d but checkpoint=%d,%v", next, upTo, ok)
					return
				}
				next = upTo + 1
				continue
			}
			if err != nil {
				t.Errorf("records from %d: %v", next, err)
				return
			}
			for _, rec := range recs {
				if rec.Seq != next || !bytes.Equal(rec.Payload, tailPayload(rec.Seq)) {
					t.Errorf("bad record %d (want %d)", rec.Seq, next)
					return
				}
				next++
			}
		}
	}()
	wg.Wait()
}
