// Package change — canonical ordering argument.
//
// The paper (Section 2.2) defines a *set* U of basic change operations to be
// valid for a database O when (1) some linearization of U is a valid
// sequence, (2) every valid linearization produces the same result, and
// (3) U does not contain both addArc(p,l,c) and remArc(p,l,c).
//
// This package decides validity by attempting the single canonical order
//
//	creNode* ; remArc* ; updNode* ; addArc*
//
// after first rejecting the non-commuting combinations (two updNode on one
// node; duplicate operations; add+rem of the same arc). The canonical order
// realizes every valid set:
//
//   - creNode first: creations have no preconditions besides id freshness,
//     and every other operation's precondition can only be *enabled*, never
//     disabled, by a creation.
//
//   - remArc before updNode: updNode(n, v) requires n to be atomic or a
//     childless complex node, so removals of n's outgoing arcs must precede
//     it. Condition (3) guarantees no removed arc is re-added in the same
//     set, so performing all removals first never disables a later
//     operation: remArc's own precondition (arc exists) cannot be
//     established by any other operation in the set (addArc of the same
//     triple is banned, and no other operation creates arcs).
//
//   - updNode before addArc: addArc(p, l, c) requires p complex, which an
//     updNode(p, C) may establish; conversely an updNode(p, v-atomic)
//     following an addArc to p is invalid in *every* order (the add makes p
//     non-childless; applying upd first makes p atomic and the add
//     ill-formed), so ordering updNode first loses no valid sets.
//
//   - addArc last: arc additions require only that their endpoints exist and
//     the parent is complex — both monotone consequences of the earlier
//     groups — and they enable nothing that precedes them.
//
// Hence if any linearization of U is valid, the canonical one is, and the
// commutativity pre-check makes the result order-independent, matching the
// paper's condition (2).
package change
