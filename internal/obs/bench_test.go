package obs

import "testing"

// The disabled path is the cost every instrumented hot path pays when
// observability is off: one atomic load and a branch.
func BenchmarkCounterDisabled(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c := NewRegistry().NewCounter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	c := NewRegistry().NewCounter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	h := NewRegistry().NewHistogram("h_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(Now())
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	h := NewRegistry().NewHistogram("h_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(Now())
	}
}
