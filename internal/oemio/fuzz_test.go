package oemio

import (
	"strings"
	"testing"
)

// FuzzRead: arbitrary bytes must never panic the reader; successful reads
// yield databases that re-marshal.
func FuzzRead(f *testing.F) {
	db := sampleDB(nil)
	data, _ := Marshal(db)
	f.Add(string(data))
	f.Add(`{"root":1,"nodes":[{"id":1,"kind":"complex"}],"arcs":[]}`)
	f.Add(`{"root":1}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, src string) {
		back, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		if _, err := Marshal(back); err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
	})
}
