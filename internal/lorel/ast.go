package lorel

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Query is a parsed select-from-where query. Lorel queries and Chorel
// queries share this AST; a Chorel query is one whose path expressions
// contain annotation expressions (paper Section 4.2).
type Query struct {
	Select []SelectItem
	From   []FromItem
	Where  Expr // nil when absent
	// WhereGens holds generators hoisted out of the where clause by
	// canonicalization (paper Section 4.2.1: variables introduced in the
	// where clause are existentially quantified). They bind their variable
	// to null when the path has no matches, so disjunctions still work.
	WhereGens []FromItem

	// key is the injective plan-cache key, set by Canonicalize (and by
	// Rekey for queries built programmatically, e.g. chorel translation).
	// Empty means the query never went through canonicalization and the
	// planner must stand aside.
	key string
}

// SelectItem is one projection of the select clause.
type SelectItem struct {
	Expr  Expr
	Label string // output label; filled by the canonicalizer if empty
}

// FromItem is one range-variable definition of the from clause.
type FromItem struct {
	Path *PathExpr
	Var  string // range variable; filled by the canonicalizer if empty
}

// PathExpr is a (possibly annotated) path expression: a head name followed
// by steps. The head resolves to a bound variable if one is in scope, and
// otherwise to a registered database root.
type PathExpr struct {
	Head  string
	Steps []*PathStep
	P     int
}

// PathStep is one ".label" step, optionally carrying an arc annotation
// expression (before the label) and a node annotation expression (after).
// A step may instead be a regular path group ("(a.b|c)*", Lorel's general
// path expressions), in which case Group is set and the other label fields
// are unused.
type PathStep struct {
	Label  string // arc label; may contain '%' globs unless Quoted
	Hash   bool   // true for the '#' wildcard (any path of length >= 0)
	Quoted bool   // label came from a quoted string: match literally
	Group  *PathGroup
	Arc    *AnnotExpr
	Node   *AnnotExpr
	P      int
}

// PathGroup is a regular path-expression group: a set of label-sequence
// alternatives with an optional quantifier. "(parking.nearby-eats)*"
// matches zero or more repetitions; "(restaurant|cafe)" matches either
// label once.
type PathGroup struct {
	// Alts holds the alternative label sequences.
	Alts [][]string
	// Quant is 0 (exactly once), '*' (zero or more), '+' (one or more),
	// or '?' (zero or one).
	Quant byte
}

// String renders the group in query syntax.
func (g *PathGroup) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, alt := range g.Alts {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strings.Join(alt, "."))
	}
	b.WriteByte(')')
	if g.Quant != 0 {
		b.WriteByte(g.Quant)
	}
	return b.String()
}

// AnnotOp identifies an annotation expression form.
type AnnotOp uint8

// Annotation expression operators. OpAt is the paper's Section 4.2.2
// "virtual annotation" — time travel to a snapshot.
const (
	OpAdd AnnotOp = iota
	OpRem
	OpCre
	OpUpd
	OpAt
)

// String returns the keyword of the operator.
func (op AnnotOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpRem:
		return "rem"
	case OpCre:
		return "cre"
	case OpUpd:
		return "upd"
	case OpAt:
		return "at"
	default:
		return fmt.Sprintf("AnnotOp(%d)", uint8(op))
	}
}

// AnnotExpr is an annotation expression: <add at T>, <rem at T>, <cre at T>,
// <upd at T from OV to NV>, or the virtual <at T>.
type AnnotExpr struct {
	Op      AnnotOp
	AtVar   string // time variable for add/rem/cre/upd ("" if none)
	FromVar string // upd only
	ToVar   string // upd only
	AtExpr  Expr   // OpAt only: the time operand (variable or literal)
	P       int
}

// Expr is a boolean, arithmetic, or object-denoting expression.
type Expr interface {
	exprNode()
	Pos() int
	String() string
}

// ConstExpr is a literal value.
type ConstExpr struct {
	Val value.Value
	P   int
}

// PathValueExpr is a path (or bare variable: a path with no steps) used as
// a value or object set.
type PathValueExpr struct {
	Path *PathExpr
}

// BinExpr is a binary operation: comparison ("=", "!=", "<", "<=", ">",
// ">=", "like"), logical ("and", "or"), or arithmetic ("+", "-", "*", "/").
type BinExpr struct {
	Op   string
	L, R Expr
	P    int
}

// NotExpr is logical negation.
type NotExpr struct {
	E Expr
	P int
}

// ExistsExpr is "exists V in path : cond".
type ExistsExpr struct {
	Var  string
	In   *PathExpr
	Cond Expr
	P    int
}

// TimeRefExpr is the QSS polling-time reference t[0], t[-1], ... of paper
// Section 6.
type TimeRefExpr struct {
	Index int
	P     int
}

// AggExpr is an aggregate over the matches of a path expression, evaluated
// per tuple: count(path), min(path), max(path), sum(path), avg(path).
// Lorel's aggregation, specialized to path arguments.
type AggExpr struct {
	Fn   string // count, min, max, sum, avg
	Path *PathExpr
	P    int
}

func (*AggExpr) exprNode()       {}
func (*ConstExpr) exprNode()     {}
func (*PathValueExpr) exprNode() {}
func (*BinExpr) exprNode()       {}
func (*NotExpr) exprNode()       {}
func (*ExistsExpr) exprNode()    {}
func (*TimeRefExpr) exprNode()   {}

// Pos returns the byte offset of the expression in the query text.
func (e *AggExpr) Pos() int       { return e.P }
func (e *ConstExpr) Pos() int     { return e.P }
func (e *PathValueExpr) Pos() int { return e.Path.P }
func (e *BinExpr) Pos() int       { return e.P }
func (e *NotExpr) Pos() int       { return e.P }
func (e *ExistsExpr) Pos() int    { return e.P }
func (e *TimeRefExpr) Pos() int   { return e.P }

func (e *AggExpr) String() string { return fmt.Sprintf("%s(%s)", e.Fn, e.Path) }

func (e *ConstExpr) String() string { return e.Val.String() }

func (e *PathValueExpr) String() string { return e.Path.String() }

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *NotExpr) String() string { return fmt.Sprintf("not %s", e.E) }

func (e *ExistsExpr) String() string {
	return fmt.Sprintf("exists %s in %s : %s", e.Var, e.In, e.Cond)
}

func (e *TimeRefExpr) String() string { return fmt.Sprintf("t[%d]", e.Index) }

// String renders the path in query syntax.
func (p *PathExpr) String() string {
	var b strings.Builder
	b.WriteString(p.Head)
	for _, s := range p.Steps {
		b.WriteByte('.')
		if s.Arc != nil {
			b.WriteString(s.Arc.String())
		}
		switch {
		case s.Group != nil:
			b.WriteString(s.Group.String())
		case s.Hash:
			b.WriteByte('#')
		case s.Quoted:
			fmt.Fprintf(&b, "%q", s.Label)
		default:
			b.WriteString(s.Label)
		}
		if s.Node != nil {
			b.WriteString(s.Node.String())
		}
	}
	return b.String()
}

// String renders the annotation expression in query syntax.
func (a *AnnotExpr) String() string {
	var b strings.Builder
	b.WriteByte('<')
	if a.Op == OpAt {
		fmt.Fprintf(&b, "at %s", a.AtExpr)
	} else {
		b.WriteString(a.Op.String())
		if a.AtVar != "" {
			fmt.Fprintf(&b, " at %s", a.AtVar)
		}
		if a.FromVar != "" {
			fmt.Fprintf(&b, " from %s", a.FromVar)
		}
		if a.ToVar != "" {
			fmt.Fprintf(&b, " to %s", a.ToVar)
		}
	}
	b.WriteByte('>')
	return b.String()
}

// String renders the query in parseable syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Expr.String())
		if s.Label != "" {
			fmt.Fprintf(&b, " as %s", s.Label)
		}
	}
	if len(q.From) > 0 {
		b.WriteString(" from ")
		for i, f := range q.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Path.String())
			if f.Var != "" {
				b.WriteByte(' ')
				b.WriteString(f.Var)
			}
		}
	}
	if q.Where != nil {
		fmt.Fprintf(&b, " where %s", q.Where)
	}
	return b.String()
}

// HasAnnotations reports whether the query uses Chorel annotation
// expressions anywhere (making it a Chorel rather than plain Lorel query).
func (q *Query) HasAnnotations() bool {
	found := false
	q.walkPaths(func(p *PathExpr) {
		for _, s := range p.Steps {
			if s.Arc != nil || s.Node != nil {
				found = true
			}
		}
	})
	return found
}

// WalkPaths visits every path expression in the query, including hoisted
// generators and expression-embedded paths.
func (q *Query) WalkPaths(fn func(*PathExpr)) { q.walkPaths(fn) }

// walkPaths visits every path expression in the query.
func (q *Query) walkPaths(fn func(*PathExpr)) {
	for _, s := range q.Select {
		walkExprPaths(s.Expr, fn)
	}
	for _, f := range q.From {
		fn(f.Path)
	}
	for _, f := range q.WhereGens {
		fn(f.Path)
	}
	if q.Where != nil {
		walkExprPaths(q.Where, fn)
	}
}

func walkExprPaths(e Expr, fn func(*PathExpr)) {
	switch x := e.(type) {
	case *PathValueExpr:
		fn(x.Path)
	case *AggExpr:
		fn(x.Path)
	case *BinExpr:
		walkExprPaths(x.L, fn)
		walkExprPaths(x.R, fn)
	case *NotExpr:
		walkExprPaths(x.E, fn)
	case *ExistsExpr:
		fn(x.In)
		walkExprPaths(x.Cond, fn)
	}
}
