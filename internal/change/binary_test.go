package change

import (
	"reflect"
	"testing"

	"repro/internal/timestamp"
	"repro/internal/value"
)

func sampleSteps() []Step {
	return []Step{
		{
			At: timestamp.MustParse("1Jan97"),
			Ops: Set{
				CreNode{Node: 7, Value: value.Complex()},
				CreNode{Node: 8, Value: value.Str("Hakata")},
				AddArc{Parent: 1, Label: "restaurant", Child: 7},
				AddArc{Parent: 7, Label: "name", Child: 8},
			},
		},
		{
			At: timestamp.MustParse("4Jan97 11:30"),
			Ops: Set{
				UpdNode{Node: 8, Value: value.Int(-42)},
				RemArc{Parent: 1, Label: "restaurant", Child: 7},
			},
		},
		{
			At: timestamp.FromUnix(-123456),
			Ops: Set{
				UpdNode{Node: 3, Value: value.Real(20.5)},
				UpdNode{Node: 4, Value: value.Bool(true)},
				UpdNode{Node: 5, Value: value.Null()},
				UpdNode{Node: 6, Value: value.Time(timestamp.MustParse("1Feb97"))},
			},
		},
		{At: timestamp.FromUnix(0), Ops: Set{}},
	}
}

func TestStepBinaryRoundTrip(t *testing.T) {
	for i, step := range sampleSteps() {
		data := AppendStep(nil, step)
		back, n, err := DecodeStep(data)
		if err != nil {
			t.Fatalf("step %d: decode: %v", i, err)
		}
		if n != len(data) {
			t.Errorf("step %d: consumed %d of %d bytes", i, n, len(data))
		}
		if !back.At.Equal(step.At) {
			t.Errorf("step %d: time %s != %s", i, back.At, step.At)
		}
		if !reflect.DeepEqual(back.Ops, step.Ops) {
			t.Errorf("step %d: ops %v != %v", i, back.Ops, step.Ops)
		}
	}
}

func TestStepBinaryConcatenation(t *testing.T) {
	steps := sampleSteps()
	var data []byte
	for _, s := range steps {
		data = AppendStep(data, s)
	}
	off := 0
	for i, want := range steps {
		got, n, err := DecodeStep(data[off:])
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !got.At.Equal(want.At) || !reflect.DeepEqual(got.Ops, want.Ops) {
			t.Errorf("step %d mismatch", i)
		}
		off += n
	}
	if off != len(data) {
		t.Errorf("consumed %d of %d bytes", off, len(data))
	}
}

func TestTimeBinaryInfinities(t *testing.T) {
	for _, tt := range []timestamp.Time{timestamp.NegInf, timestamp.PosInf, timestamp.FromUnix(852076800)} {
		data := AppendTime(nil, tt)
		back, n, err := DecodeTime(data)
		if err != nil || n != len(data) || !back.Equal(tt) {
			t.Errorf("round trip of %s: got %s, n=%d, err=%v", tt, back, n, err)
		}
	}
}

// TestDecodeCorruptNeverPanics walks every truncation and a byte-flip sweep
// of a valid encoding: decoding must either succeed or error, never panic.
func TestDecodeCorruptNeverPanics(t *testing.T) {
	var data []byte
	for _, s := range sampleSteps() {
		data = AppendStep(data, s)
	}
	for i := 0; i < len(data); i++ {
		if _, _, err := DecodeStep(data[:i]); err == nil && i == 0 {
			t.Errorf("decode of empty input succeeded")
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		DecodeStep(mut) // must not panic; errors are fine
	}
}

func TestDecodeRejectsHugeLengths(t *testing.T) {
	// A set claiming 2^40 operations must fail fast, not allocate.
	data := []byte{timeFinite, 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if _, _, err := DecodeStep(data); err == nil {
		t.Fatal("decode of absurd set length succeeded")
	}
}
