package change

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/oem"
	"repro/internal/timestamp"
	"repro/internal/value"
)

// Stable binary encoding of change operations, sets, and history steps —
// the record payload format of the write-ahead log (internal/wal). The
// encoding is self-delimiting and versioned by construction (one opcode
// byte per operation), uses varints for ids and counts, and is designed to
// decode defensively: corrupt or truncated input yields ErrCorrupt, never a
// panic or an over-allocation.
//
// Layout (all varints are unsigned LEB128 unless noted):
//
//	step  = time set
//	time  = infByte | 0x00 zigzag(sec)        (infByte: 0x01 -inf, 0x02 +inf)
//	set   = uvarint(len) op*
//	op    = 0x00 uvarint(node) value          creNode
//	      | 0x01 uvarint(node) value          updNode
//	      | 0x02 uvarint(parent) str uvarint(child)   addArc
//	      | 0x03 uvarint(parent) str uvarint(child)   remArc
//	value = kindByte payload                  (see appendValue)
//	str   = uvarint(len) bytes

// ErrCorrupt reports undecodable binary input.
var ErrCorrupt = errors.New("change: corrupt binary encoding")

// Operation opcodes.
const (
	opCreNode = 0x00
	opUpdNode = 0x01
	opAddArc  = 0x02
	opRemArc  = 0x03
)

// Timestamp markers.
const (
	timeFinite = 0x00
	timeNegInf = 0x01
	timePosInf = 0x02
)

// maxDecodeCount caps decoded element counts so corrupt length prefixes
// cannot trigger huge allocations.
const maxDecodeCount = 1 << 24

// AppendTime appends the binary encoding of a timestamp.
func AppendTime(dst []byte, t timestamp.Time) []byte {
	switch {
	case t.Equal(timestamp.NegInf):
		return append(dst, timeNegInf)
	case t.Equal(timestamp.PosInf):
		return append(dst, timePosInf)
	}
	dst = append(dst, timeFinite)
	return binary.AppendVarint(dst, t.Unix())
}

// DecodeTime decodes a timestamp, returning it and the bytes consumed.
func DecodeTime(data []byte) (timestamp.Time, int, error) {
	if len(data) == 0 {
		return timestamp.Time{}, 0, fmt.Errorf("%w: empty timestamp", ErrCorrupt)
	}
	switch data[0] {
	case timeNegInf:
		return timestamp.NegInf, 1, nil
	case timePosInf:
		return timestamp.PosInf, 1, nil
	case timeFinite:
		sec, n := binary.Varint(data[1:])
		if n <= 0 {
			return timestamp.Time{}, 0, fmt.Errorf("%w: bad timestamp varint", ErrCorrupt)
		}
		return timestamp.FromUnix(sec), 1 + n, nil
	default:
		return timestamp.Time{}, 0, fmt.Errorf("%w: unknown timestamp marker 0x%02x", ErrCorrupt, data[0])
	}
}

// AppendValue appends the binary encoding of an atomic or complex value —
// the same encoding operations embed. Exported for sibling on-disk formats
// (internal/segment) that store values outside an operation context.
func AppendValue(dst []byte, v value.Value) []byte { return appendValue(dst, v) }

// DecodeValue decodes one value from the front of data, returning it and
// the number of bytes consumed.
func DecodeValue(data []byte) (value.Value, int, error) { return decodeValue(data) }

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte { return appendString(dst, s) }

// DecodeString decodes one length-prefixed string from the front of data.
func DecodeString(data []byte) (string, int, error) { return decodeString(data) }

// appendValue appends the binary encoding of an atomic or complex value.
func appendValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case value.KindComplex, value.KindNull:
		// kind byte only
	case value.KindBool:
		if v.AsBool() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case value.KindInt:
		dst = binary.AppendVarint(dst, v.AsInt())
	case value.KindReal:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsReal()))
	case value.KindString:
		dst = appendString(dst, v.AsString())
	case value.KindTime:
		dst = AppendTime(dst, v.AsTime())
	}
	return dst
}

func decodeValue(data []byte) (value.Value, int, error) {
	if len(data) == 0 {
		return value.Value{}, 0, fmt.Errorf("%w: empty value", ErrCorrupt)
	}
	kind := value.Kind(data[0])
	rest := data[1:]
	switch kind {
	case value.KindComplex:
		return value.Complex(), 1, nil
	case value.KindNull:
		return value.Null(), 1, nil
	case value.KindBool:
		if len(rest) < 1 || rest[0] > 1 {
			return value.Value{}, 0, fmt.Errorf("%w: bad bool", ErrCorrupt)
		}
		return value.Bool(rest[0] == 1), 2, nil
	case value.KindInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return value.Value{}, 0, fmt.Errorf("%w: bad int varint", ErrCorrupt)
		}
		return value.Int(i), 1 + n, nil
	case value.KindReal:
		if len(rest) < 8 {
			return value.Value{}, 0, fmt.Errorf("%w: short real", ErrCorrupt)
		}
		return value.Real(math.Float64frombits(binary.LittleEndian.Uint64(rest))), 9, nil
	case value.KindString:
		s, n, err := decodeString(rest)
		if err != nil {
			return value.Value{}, 0, err
		}
		return value.Str(s), 1 + n, nil
	case value.KindTime:
		t, n, err := DecodeTime(rest)
		if err != nil {
			return value.Value{}, 0, err
		}
		return value.Time(t), 1 + n, nil
	default:
		return value.Value{}, 0, fmt.Errorf("%w: unknown value kind 0x%02x", ErrCorrupt, data[0])
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(data []byte) (string, int, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > maxDecodeCount {
		return "", 0, fmt.Errorf("%w: bad string length", ErrCorrupt)
	}
	if uint64(len(data)-n) < l {
		return "", 0, fmt.Errorf("%w: short string", ErrCorrupt)
	}
	return string(data[n : n+int(l)]), n + int(l), nil
}

// AppendOp appends the binary encoding of one operation.
func AppendOp(dst []byte, op Op) []byte {
	switch o := op.(type) {
	case CreNode:
		dst = append(dst, opCreNode)
		dst = binary.AppendUvarint(dst, uint64(o.Node))
		return appendValue(dst, o.Value)
	case UpdNode:
		dst = append(dst, opUpdNode)
		dst = binary.AppendUvarint(dst, uint64(o.Node))
		return appendValue(dst, o.Value)
	case AddArc:
		dst = append(dst, opAddArc)
		dst = binary.AppendUvarint(dst, uint64(o.Parent))
		dst = appendString(dst, o.Label)
		return binary.AppendUvarint(dst, uint64(o.Child))
	case RemArc:
		dst = append(dst, opRemArc)
		dst = binary.AppendUvarint(dst, uint64(o.Parent))
		dst = appendString(dst, o.Label)
		return binary.AppendUvarint(dst, uint64(o.Child))
	default:
		panic(fmt.Sprintf("change: AppendOp: unknown operation type %T", op))
	}
}

// DecodeOp decodes one operation, returning it and the bytes consumed.
func DecodeOp(data []byte) (Op, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("%w: empty operation", ErrCorrupt)
	}
	code, rest := data[0], data[1:]
	used := 1
	readID := func() (oem.NodeID, bool) {
		id, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		used += n
		return oem.NodeID(id), true
	}
	switch code {
	case opCreNode, opUpdNode:
		node, ok := readID()
		if !ok {
			return nil, 0, fmt.Errorf("%w: bad node id", ErrCorrupt)
		}
		v, n, err := decodeValue(rest)
		if err != nil {
			return nil, 0, err
		}
		used += n
		if code == opCreNode {
			return CreNode{Node: node, Value: v}, used, nil
		}
		return UpdNode{Node: node, Value: v}, used, nil
	case opAddArc, opRemArc:
		parent, ok := readID()
		if !ok {
			return nil, 0, fmt.Errorf("%w: bad parent id", ErrCorrupt)
		}
		label, n, err := decodeString(rest)
		if err != nil {
			return nil, 0, err
		}
		rest = rest[n:]
		used += n
		child, ok := readID()
		if !ok {
			return nil, 0, fmt.Errorf("%w: bad child id", ErrCorrupt)
		}
		if code == opAddArc {
			return AddArc{Parent: parent, Label: label, Child: child}, used, nil
		}
		return RemArc{Parent: parent, Label: label, Child: child}, used, nil
	default:
		return nil, 0, fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, code)
	}
}

// AppendSet appends the binary encoding of an operation set.
func AppendSet(dst []byte, s Set) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, op := range s {
		dst = AppendOp(dst, op)
	}
	return dst
}

// DecodeSet decodes an operation set, returning it and the bytes consumed.
func DecodeSet(data []byte) (Set, int, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 || count > maxDecodeCount {
		return nil, 0, fmt.Errorf("%w: bad set length", ErrCorrupt)
	}
	used := n
	s := make(Set, 0, min(int(count), 1024))
	for i := uint64(0); i < count; i++ {
		op, opn, err := DecodeOp(data[used:])
		if err != nil {
			return nil, 0, err
		}
		s = append(s, op)
		used += opn
	}
	return s, used, nil
}

// AppendStep appends the binary encoding of one history step (t, ops).
func AppendStep(dst []byte, s Step) []byte {
	dst = AppendTime(dst, s.At)
	return AppendSet(dst, s.Ops)
}

// DecodeStep decodes one history step, returning it and the bytes consumed.
func DecodeStep(data []byte) (Step, int, error) {
	t, n, err := DecodeTime(data)
	if err != nil {
		return Step{}, 0, err
	}
	ops, m, err := DecodeSet(data[n:])
	if err != nil {
		return Step{}, 0, err
	}
	return Step{At: t, Ops: ops}, n + m, nil
}
